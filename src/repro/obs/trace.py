"""Structured trace recorders (the event-sink half of ``repro.obs``).

A *trace* is an append-only journal of structured events — one dict per
event — emitted by the cache hierarchy, the stores, the elastic manager,
the circuit breaker, and the trainer as a run executes. Three sinks:

* :class:`NullRecorder` — the default everywhere; ``enabled`` is False so
  instrumented call sites skip event construction entirely (zero
  overhead when tracing is off).
* :class:`InMemoryRecorder` — keeps events in a list; tests and
  interactive analysis.
* :class:`JsonlRecorder` — streams each event as one JSON line to a file;
  the format ``repro report`` and :mod:`repro.obs.report` consume.

Every event carries at least ``kind`` (the event type, e.g. ``"fetch"``)
and ``epoch`` (the trainer's current epoch, ``-1`` outside a run). The
remaining fields are kind-specific; see the README "Observability"
section for the full schema.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Tuple, Union

__all__ = [
    "TraceRecorder",
    "NullRecorder",
    "InMemoryRecorder",
    "JsonlRecorder",
    "SEGMENT_KIND",
    "read_jsonl",
]

#: Kind of the header event a :class:`JsonlRecorder` writes each time it
#: (re)opens a trace file. A resumed run appends a second header, so
#: ``repro report`` can count segments and stitch the journal.
SEGMENT_KIND = "trace_segment"


class TraceRecorder:
    """Protocol for trace sinks.

    Subclasses set ``enabled`` and implement :meth:`emit`. Call sites are
    expected to guard event construction with ``if recorder.enabled:`` so
    a disabled recorder costs one attribute read per instrumented op.
    """

    #: Whether :meth:`emit` does anything; call sites guard on this.
    enabled: bool = True

    def emit(self, event: Dict[str, Any]) -> None:
        """Record one structured event (a flat JSON-serializable dict)."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release any underlying resources (default: no-op)."""


class NullRecorder(TraceRecorder):
    """Discards everything; ``enabled`` is False so emitters skip work."""

    enabled = False

    def emit(self, event: Dict[str, Any]) -> None:
        """Drop the event."""


class InMemoryRecorder(TraceRecorder):
    """Accumulates events in ``self.events`` (a plain list of dicts)."""

    enabled = True

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def emit(self, event: Dict[str, Any]) -> None:
        """Append the event to the in-memory list."""
        self.events.append(event)

    def of_kind(self, kind: str) -> List[Dict[str, Any]]:
        """All recorded events of one kind, in emission order."""
        return [e for e in self.events if e.get("kind") == kind]

    def clear(self) -> None:
        """Drop all recorded events."""
        self.events.clear()


def _truncate_partial_tail(path: Path) -> None:
    """Cut a newline-less partial final line off ``path`` in place.

    A crashed writer flushes whole lines, so anything after the last
    ``\\n`` is at most one incomplete event — the same fragment
    :func:`read_jsonl` silently drops. No-op when the file already ends
    cleanly.
    """
    with path.open("rb+") as fh:
        fh.seek(0, 2)
        size = fh.tell()
        if size == 0:
            return
        # Scan backwards chunk by chunk for the last newline; event
        # lines are small, so the first 64 KiB chunk almost always hits.
        end = size
        keep = 0
        while end > 0:
            step = min(end, 65536)
            fh.seek(end - step)
            cut = fh.read(step).rfind(b"\n")
            if cut != -1:
                keep = end - step + cut + 1
                break
            end -= step
        if keep != size:
            fh.truncate(keep)


class JsonlRecorder(TraceRecorder):
    """Streams events to ``path``, one JSON object per line.

    The file is opened lazily on the first event and every line is
    flushed, so a crashed (or preempted) run leaves a readable trace up
    to its last completed operation. Use as a context manager or call
    :meth:`close` explicitly.

    The file is opened in **append** mode and each (re)open writes a
    ``trace_segment`` header line: a checkpoint-restored run pointed at
    the same path extends the pre-preemption journal as a new segment
    instead of truncating it (mode ``"w"`` silently destroyed the
    history a resume exists to preserve). Callers starting a genuinely
    fresh run over an old path should unlink it first — the CLI does.
    """

    enabled = True

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fh = None
        self.emitted = 0

    def emit(self, event: Dict[str, Any]) -> None:
        """Serialize the event as one JSON line (flushed immediately)."""
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            resumed = self.path.exists() and self.path.stat().st_size > 0
            if resumed:
                # If the previous segment's writer died mid-write, the
                # file ends in a partial line with no terminator.
                # Appending straight after it would glue the new
                # segment header onto that fragment — turning the
                # tolerable truncated *tail* read_jsonl drops into
                # mid-file corruption it refuses. Drop the fragment
                # (it holds no complete event) before appending.
                _truncate_partial_tail(self.path)
            self._fh = self.path.open("a")
            self._write({"kind": SEGMENT_KIND, "resumed": resumed})
        self._write(event)

    def _write(self, event: Dict[str, Any]) -> None:
        json.dump(event, self._fh, separators=(",", ":"))
        self._fh.write("\n")
        self._fh.flush()
        self.emitted += 1

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlRecorder":
        """Context-manager entry: returns self."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: closes the file."""
        self.close()


def read_jsonl(
    path: Union[str, Path], return_truncated: bool = False
) -> Union[List[Dict[str, Any]], Tuple[List[Dict[str, Any]], bool]]:
    """Load a JSONL trace file back into a list of event dicts.

    Blank lines are skipped. A truncated *final* line — the signature a
    crashed writer leaves mid-``write`` — is silently dropped, keeping
    the docstring promise that crashed-run traces are readable; pass
    ``return_truncated=True`` to get ``(events, truncated)`` so callers
    (``repro report``) can surface that the tail was cut. Unparseable
    lines anywhere *before* the final one still raise
    ``json.JSONDecodeError``: that is corruption, not truncation.
    """
    events: List[Dict[str, Any]] = []
    truncated = False
    pending_error: Union[json.JSONDecodeError, None] = None
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if pending_error is not None:
                raise pending_error  # bad line followed by more data
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                pending_error = exc
    if pending_error is not None:
        truncated = True
    if return_truncated:
        return events, truncated
    return events
