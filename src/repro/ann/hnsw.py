"""Hierarchical Navigable Small World (HNSW) index, from scratch.

Implements Malkov & Yashunin (2018) — the library the paper adopts for its
graph-based importance sampling (§4.1): "we use the HNSW library for its
fast index construction and support for dynamic sample updates".

Structure: every element gets a random top layer ``l`` drawn geometrically
(``l = floor(-ln(U) * mL)``, ``mL = 1/ln(M)``). Each layer is a proximity
graph; search greedily descends from the global entry point through upper
layers, then runs a beam search (width ``ef``) at layer 0.

Dynamic updates (embeddings drift as the model trains) are supported by
re-linking: ``update`` detaches the node from all its neighbors and
re-inserts it with its new vector, preserving its id.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.ann.distance import l2_distances
from repro.utils.rng import RngLike, resolve_rng

__all__ = ["HNSWIndex"]


class _Node:
    """One indexed element: its vector and per-layer adjacency lists."""

    __slots__ = ("vector", "neighbors", "level", "deleted")

    def __init__(self, vector: np.ndarray, level: int) -> None:
        self.vector = vector
        self.level = level
        # neighbors[l] is the adjacency list at layer l, for l in 0..level.
        self.neighbors: List[List[int]] = [[] for _ in range(level + 1)]
        self.deleted = False


class HNSWIndex:
    """Approximate nearest-neighbor index over L2 distance.

    Parameters
    ----------
    dim:
        Embedding dimensionality.
    M:
        Max out-degree per node on upper layers (layer 0 allows ``2*M``).
        The paper's ``neighbormax`` normalizer (Eq. 4, default 500) is a
        property of the *similarity graph* built on top of this index, not
        of HNSW's ``M``.
    ef_construction:
        Beam width during insertion.
    ef_search:
        Default beam width during queries (can be overridden per call).
    rng:
        Seed / generator for the level draws (determinism in tests).
    """

    def __init__(
        self,
        dim: int,
        M: int = 16,
        ef_construction: int = 100,
        ef_search: int = 50,
        rng: RngLike = None,
    ) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        if M < 2:
            raise ValueError("M must be >= 2")
        self.dim = int(dim)
        self.M = int(M)
        self.M0 = 2 * int(M)
        self.ef_construction = max(int(ef_construction), M)
        self.ef_search = int(ef_search)
        self._mL = 1.0 / math.log(M)
        self._rng = resolve_rng(rng)
        self._nodes: Dict[int, _Node] = {}
        self._entry: Optional[int] = None
        self._max_level = -1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, item_id: int) -> bool:
        return int(item_id) in self._nodes

    @property
    def ids(self) -> List[int]:
        return list(self._nodes)

    @property
    def max_level(self) -> int:
        return self._max_level

    def vector(self, item_id: int) -> np.ndarray:
        """Copy of a stored vector."""
        return self._nodes[int(item_id)].vector.copy()

    def degree(self, item_id: int, layer: int = 0) -> int:
        """Out-degree of a node at ``layer`` (0 = base proximity graph)."""
        node = self._nodes[int(item_id)]
        if layer > node.level:
            return 0
        return len(node.neighbors[layer])

    def graph_neighbors(self, item_id: int, layer: int = 0) -> List[int]:
        """Adjacency list of a node at ``layer`` (copies, safe to mutate)."""
        node = self._nodes[int(item_id)]
        if layer > node.level:
            return []
        return list(node.neighbors[layer])

    # ------------------------------------------------------------------
    # Distance helpers
    # ------------------------------------------------------------------
    def _dist(self, query: np.ndarray, item_id: int) -> float:
        v = self._nodes[item_id].vector
        d = query - v
        return float(math.sqrt(d @ d))

    def _dists(self, query: np.ndarray, item_ids: List[int]) -> np.ndarray:
        mat = np.stack([self._nodes[i].vector for i in item_ids])
        return l2_distances(query, mat)

    # ------------------------------------------------------------------
    # Core search
    # ------------------------------------------------------------------
    def _greedy_descend(self, query: np.ndarray, start: int, top: int, stop: int) -> int:
        """Greedy single-entry search from layer ``top`` down to ``stop+1``.

        Returns the closest node found, used as the entry point for the next
        lower layer.
        """
        current = start
        cur_dist = self._dist(query, current)
        for layer in range(top, stop, -1):
            improved = True
            while improved:
                improved = False
                neigh = self._nodes[current].neighbors[layer]
                if not neigh:
                    continue
                dists = self._dists(query, neigh)
                best = int(np.argmin(dists))
                if dists[best] < cur_dist:
                    cur_dist = float(dists[best])
                    current = neigh[best]
                    improved = True
        return current

    def _search_layer(
        self, query: np.ndarray, entry: int, ef: int, layer: int
    ) -> List[Tuple[float, int]]:
        """Beam search at one layer; returns up to ``ef`` (dist, id) pairs,
        sorted ascending by distance."""
        entry_dist = self._dist(query, entry)
        visited: Set[int] = {entry}
        # Candidate min-heap by distance; result max-heap via negated dist.
        candidates: List[Tuple[float, int]] = [(entry_dist, entry)]
        results: List[Tuple[float, int]] = [(-entry_dist, entry)]
        while candidates:
            cand_dist, cand = heapq.heappop(candidates)
            if cand_dist > -results[0][0] and len(results) >= ef:
                break
            neigh = [n for n in self._nodes[cand].neighbors[layer] if n not in visited]
            if not neigh:
                continue
            visited.update(neigh)
            dists = self._dists(query, neigh)
            worst = -results[0][0]
            for nid, nd in zip(neigh, dists):
                nd = float(nd)
                if len(results) < ef or nd < worst:
                    heapq.heappush(candidates, (nd, nid))
                    heapq.heappush(results, (-nd, nid))
                    if len(results) > ef:
                        heapq.heappop(results)
                    worst = -results[0][0]
        out = [(-d, i) for d, i in results]
        out.sort()
        return out

    # ------------------------------------------------------------------
    # Neighbor selection (simple heuristic from the paper's Algorithm 4)
    # ------------------------------------------------------------------
    def _select_neighbors(
        self, query: np.ndarray, candidates: List[Tuple[float, int]], m: int
    ) -> List[int]:
        """Diversified neighbor selection: keep a candidate only if it is
        closer to the query than to every already-selected neighbor. Falls
        back to nearest-first fill if the heuristic under-selects."""
        selected: List[int] = []
        selected_vecs: List[np.ndarray] = []
        skipped: List[int] = []
        for dist, cid in candidates:
            if len(selected) >= m:
                break
            vec = self._nodes[cid].vector
            dominated = False
            for sv in selected_vecs:
                diff = vec - sv
                if math.sqrt(diff @ diff) < dist:
                    dominated = True
                    break
            if dominated:
                skipped.append(cid)
            else:
                selected.append(cid)
                selected_vecs.append(vec)
        for cid in skipped:
            if len(selected) >= m:
                break
            selected.append(cid)
        return selected

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, item_id: int, vector: np.ndarray) -> None:
        """Insert a new element; if ``item_id`` exists, re-link with the new
        vector (dynamic update)."""
        item_id = int(item_id)
        vector = np.ascontiguousarray(np.asarray(vector, dtype=np.float64).ravel())
        if vector.shape[0] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {vector.shape[0]}")
        if item_id in self._nodes:
            self._detach(item_id)
            level = self._nodes.pop(item_id).level
        else:
            level = int(-math.log(max(self._rng.random(), 1e-300)) * self._mL)
        node = _Node(vector, level)
        self._nodes[item_id] = node

        if self._entry is None:
            self._entry = item_id
            self._max_level = level
            return

        entry = self._entry
        if level < self._max_level:
            entry = self._greedy_descend(vector, entry, self._max_level, level)

        for layer in range(min(level, self._max_level), -1, -1):
            candidates = self._search_layer(vector, entry, self.ef_construction, layer)
            m = self.M0 if layer == 0 else self.M
            chosen = self._select_neighbors(vector, candidates, m)
            node.neighbors[layer] = list(chosen)
            for cid in chosen:
                cneigh = self._nodes[cid].neighbors[layer]
                cneigh.append(item_id)
                limit = self.M0 if layer == 0 else self.M
                if len(cneigh) > limit:
                    self._prune(cid, layer, limit)
            if candidates:
                entry = candidates[0][1]

        if level > self._max_level:
            self._max_level = level
            self._entry = item_id

    def _prune(self, item_id: int, layer: int, limit: int) -> None:
        """Shrink a node's adjacency list back to ``limit`` using the
        diversified selection heuristic."""
        node = self._nodes[item_id]
        neigh = node.neighbors[layer]
        dists = self._dists(node.vector, neigh)
        order = np.argsort(dists, kind="stable")
        cand = [(float(dists[i]), neigh[i]) for i in order]
        node.neighbors[layer] = self._select_neighbors(node.vector, cand, limit)

    def add_batch(self, item_ids: np.ndarray, vectors: np.ndarray) -> None:
        """Insert or update many vectors sequentially."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        item_ids = np.asarray(item_ids).ravel()
        if len(item_ids) != len(vectors):
            raise ValueError("item_ids and vectors length mismatch")
        for i, v in zip(item_ids, vectors):
            self.add(int(i), v)

    # ``update`` is the paper's dynamic-embedding path; add() handles both.
    update = add

    def _detach(self, item_id: int) -> None:
        """Remove all edges pointing to ``item_id`` and repair entry point."""
        node = self._nodes[item_id]
        for layer in range(node.level + 1):
            for nid in node.neighbors[layer]:
                other = self._nodes.get(nid)
                if other is not None and layer <= other.level:
                    try:
                        other.neighbors[layer].remove(item_id)
                    except ValueError:
                        pass
        # Also scan for dangling one-way edges into this node. One-way edges
        # can exist after pruning, so a full sweep keeps the graph clean.
        for other_id, other in self._nodes.items():
            if other_id == item_id:
                continue
            for layer in range(other.level + 1):
                if item_id in other.neighbors[layer]:
                    other.neighbors[layer].remove(item_id)
        if self._entry == item_id:
            self._entry = None
            self._max_level = -1
            for oid, other in self._nodes.items():
                if oid != item_id and other.level > self._max_level:
                    self._max_level = other.level
                    self._entry = oid

    def remove(self, item_id: int) -> None:
        """Delete an element entirely."""
        item_id = int(item_id)
        if item_id not in self._nodes:
            raise KeyError(item_id)
        self._detach(item_id)
        del self._nodes[item_id]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def search(
        self,
        query: np.ndarray,
        k: int,
        ef: Optional[int] = None,
        exclude: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Approximate k-NN. Returns ``(ids, distances)`` ascending."""
        if self._entry is None:
            return np.empty(0, dtype=np.int64), np.empty(0)
        query = np.asarray(query, dtype=np.float64).ravel()
        ef = max(int(ef if ef is not None else self.ef_search), k)
        entry = self._greedy_descend(query, self._entry, self._max_level, 0)
        results = self._search_layer(query, entry, ef, 0)
        ids = [i for _, i in results]
        dists = [d for d, _ in results]
        if exclude is not None:
            pairs = [(d, i) for d, i in zip(dists, ids) if i != int(exclude)]
            dists = [d for d, _ in pairs]
            ids = [i for _, i in pairs]
        k = min(int(k), len(ids))
        return np.asarray(ids[:k], dtype=np.int64), np.asarray(dists[:k])

    def neighbors_within(
        self,
        query: np.ndarray,
        radius: float,
        ef: Optional[int] = None,
        exclude: Optional[int] = None,
        max_neighbors: int = 512,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Approximate range query: beam-search then filter by ``radius``.

        ``max_neighbors`` caps the beam (paper's ``neighbormax``-scale bound).
        """
        ids, dists = self.search(query, k=max_neighbors, ef=ef, exclude=exclude)
        keep = dists <= radius
        return ids[keep], dists[keep]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Serialize the index to an ``.npz`` archive.

        Stores vectors, per-node levels, flattened adjacency, and the
        construction parameters. The RNG state is not saved: a loaded index
        continues with fresh level draws, which only affects *future*
        inserts' layer assignment, not correctness.
        """
        import json
        from pathlib import Path

        ids = list(self._nodes)
        vectors = (
            np.stack([self._nodes[i].vector for i in ids])
            if ids else np.empty((0, self.dim))
        )
        levels = np.asarray([self._nodes[i].level for i in ids], dtype=np.int64)
        # Flatten adjacency as (node_pos, layer, neighbor_id) triples.
        triples = []
        for pos, i in enumerate(ids):
            for layer, neigh in enumerate(self._nodes[i].neighbors):
                for nid in neigh:
                    triples.append((pos, layer, nid))
        adjacency = (
            np.asarray(triples, dtype=np.int64)
            if triples else np.empty((0, 3), dtype=np.int64)
        )
        header = json.dumps({
            "dim": self.dim, "M": self.M,
            "ef_construction": self.ef_construction,
            "ef_search": self.ef_search,
            "entry": self._entry, "max_level": self._max_level,
        })
        np.savez(
            Path(path),
            ids=np.asarray(ids, dtype=np.int64),
            vectors=vectors,
            levels=levels,
            adjacency=adjacency,
            header=np.frombuffer(header.encode("utf-8"), dtype=np.uint8),
        )

    @classmethod
    def load(cls, path, rng: RngLike = None) -> "HNSWIndex":
        """Reconstruct an index saved with :meth:`save`."""
        import json
        from pathlib import Path

        with np.load(Path(path)) as data:
            header = json.loads(bytes(data["header"]).decode("utf-8"))
            idx = cls(
                header["dim"], M=header["M"],
                ef_construction=header["ef_construction"],
                ef_search=header["ef_search"], rng=rng,
            )
            ids = data["ids"]
            vectors = data["vectors"]
            levels = data["levels"]
            for i, v, lvl in zip(ids, vectors, levels):
                idx._nodes[int(i)] = _Node(
                    np.ascontiguousarray(v, dtype=np.float64), int(lvl)
                )
            for pos, layer, nid in data["adjacency"]:
                idx._nodes[int(ids[pos])].neighbors[int(layer)].append(int(nid))
            idx._entry = header["entry"]
            idx._max_level = header["max_level"]
        return idx

    def check_symmetric_reachability(self) -> float:
        """Fraction of layer-0 edges that are bidirectional (diagnostic)."""
        total = 0
        sym = 0
        for nid, node in self._nodes.items():
            for other in node.neighbors[0]:
                total += 1
                if nid in self._nodes[other].neighbors[0]:
                    sym += 1
        return sym / total if total else 1.0
