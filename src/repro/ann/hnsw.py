"""Hierarchical Navigable Small World (HNSW) index, from scratch.

Implements Malkov & Yashunin (2018) — the library the paper adopts for its
graph-based importance sampling (§4.1): "we use the HNSW library for its
fast index construction and support for dynamic sample updates".

Structure: every element gets a random top layer ``l`` drawn geometrically
(``l = floor(-ln(U) * mL)``, ``mL = 1/ln(M)``). Each layer is a proximity
graph; search greedily descends from the global entry point through upper
layers, then runs a beam search (width ``ef``) at layer 0.

Storage layout: vectors live in one contiguous ``(capacity, dim)`` float64
matrix with cached squared norms, and adjacency lists hold *row* indices
into that matrix — every hop's distance block is one fancy-index + GEMV
(``||v-q||^2 = ||v||^2 - 2 v·q + ||q||^2`` with ``||v||^2`` precomputed)
instead of re-stacking per-node vectors. An id→row map keeps the public
API keyed by stable external ids. Reverse-edge sets mirror the forward
lists, so detaching a node on dynamic ``update``/``remove`` is O(degree).

:meth:`HNSWIndex.reorder` relabels rows — BFS from the entry point or by
descending layer-0 degree — so graph-adjacent nodes become memory-adjacent
(the relabeling trick from *Graph Reordering for Cache-Efficient Near
Neighbor Search*). Search results are unchanged by construction: every
traversal orders ties by ``(distance, external id)``, never by row.

:meth:`HNSWIndex.attach_pq` plugs a trained
:class:`~repro.ann.pq.ProductQuantizer` in as an optional candidate-scoring
mode (paper §5): traversal distances come from ADC lookup tables over uint8
codes, and the final beam is re-ranked with exact distances.

Dynamic updates (embeddings drift as the model trains) are supported by
re-linking: ``update`` detaches the node from all its neighbors and
re-inserts it with its new vector, preserving its id.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.ann.distance import l2_distances
from repro.utils.rng import RngLike, resolve_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.ann.pq import ProductQuantizer

__all__ = ["HNSWIndex"]

_FREE = -1  # sentinel in _id_of for rows on the free list


class HNSWIndex:
    """Approximate nearest-neighbor index over L2 distance.

    Parameters
    ----------
    dim:
        Embedding dimensionality.
    M:
        Max out-degree per node on upper layers (layer 0 allows ``2*M``).
        The paper's ``neighbormax`` normalizer (Eq. 4, default 500) is a
        property of the *similarity graph* built on top of this index, not
        of HNSW's ``M``.
    ef_construction:
        Beam width during insertion.
    ef_search:
        Default beam width during queries (can be overridden per call).
    rng:
        Seed / generator for the level draws (determinism in tests).
    capacity:
        Initial row allocation for the vector matrix (grows by doubling).
        Pre-sizing to the expected element count avoids regrowth copies.
    """

    def __init__(
        self,
        dim: int,
        M: int = 16,
        ef_construction: int = 100,
        ef_search: int = 50,
        rng: RngLike = None,
        capacity: int = 1024,
    ) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        if M < 2:
            raise ValueError("M must be >= 2")
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.dim = int(dim)
        self.M = int(M)
        self.M0 = 2 * int(M)
        self.ef_construction = max(int(ef_construction), M)
        self.ef_search = int(ef_search)
        self._mL = 1.0 / math.log(M)
        self._rng = resolve_rng(rng)
        # Flat storage: row-indexed vector matrix + cached squared norms.
        self._vectors = np.empty((int(capacity), self.dim), dtype=np.float64)
        self._norms = np.empty(int(capacity), dtype=np.float64)
        self._levels: List[int] = []  # row -> top layer
        self._out: List[List[List[int]]] = []  # row -> layer -> neighbor rows
        self._in: List[List[Set[int]]] = []  # row -> layer -> rows linking here
        self._id_of: List[int] = []  # row -> external id (_FREE when vacant)
        self._row_of: Dict[int, int] = {}  # external id -> row
        self._free: List[int] = []  # vacated rows available for reuse
        self._entry: Optional[int] = None  # external id of the entry point
        self._max_level = -1
        # (row, layer) -> adjacency as an int64 array; cleared wholesale on
        # any graph mutation so query workloads materialize each list once.
        self._adj_cache: Dict[Tuple[int, int], np.ndarray] = {}
        # Optional PQ/ADC candidate-scoring mode (see attach_pq).
        self._pq: Optional["ProductQuantizer"] = None
        self._codes: Optional[np.ndarray] = None
        self._pq_default = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._row_of)

    def __contains__(self, item_id: int) -> bool:
        return int(item_id) in self._row_of

    @property
    def ids(self) -> List[int]:
        """External ids in insertion order."""
        return list(self._row_of)

    @property
    def max_level(self) -> int:
        """Top layer of the current entry point (-1 when empty)."""
        return self._max_level

    def vector(self, item_id: int) -> np.ndarray:
        """Copy of a stored vector."""
        return self._vectors[self._row_of[int(item_id)]].copy()

    def node_level(self, item_id: int) -> int:
        """Top layer assigned to a node."""
        return self._levels[self._row_of[int(item_id)]]

    def degree(self, item_id: int, layer: int = 0) -> int:
        """Out-degree of a node at ``layer`` (0 = base proximity graph)."""
        row = self._row_of[int(item_id)]
        if layer > self._levels[row]:
            return 0
        return len(self._out[row][layer])

    def graph_neighbors(self, item_id: int, layer: int = 0) -> List[int]:
        """Adjacency list of a node at ``layer`` (copies, safe to mutate)."""
        row = self._row_of[int(item_id)]
        if layer > self._levels[row]:
            return []
        return [self._id_of[r] for r in self._out[row][layer]]

    @property
    def pq_enabled(self) -> bool:
        """Whether a ProductQuantizer is attached for ADC candidate scoring."""
        return self._pq is not None

    # ------------------------------------------------------------------
    # Row allocation
    # ------------------------------------------------------------------
    def _grow(self, min_rows: int) -> None:
        new_cap = max(4, self._vectors.shape[0])
        while new_cap < min_rows:
            new_cap *= 2
        if new_cap == self._vectors.shape[0]:
            return
        used = len(self._id_of)
        grown = np.empty((new_cap, self.dim), dtype=np.float64)
        grown[:used] = self._vectors[:used]
        self._vectors = grown
        norms = np.empty(new_cap, dtype=np.float64)
        norms[:used] = self._norms[:used]
        self._norms = norms
        if self._codes is not None:
            codes = np.zeros((new_cap, self._codes.shape[1]), dtype=np.uint8)
            codes[:used] = self._codes[:used]
            self._codes = codes

    def _alloc_row(self, item_id: int, vector: np.ndarray, level: int) -> int:
        """Place ``vector`` in a row (reusing freed rows first)."""
        if self._free:
            row = self._free.pop()
            self._id_of[row] = item_id
            self._levels[row] = level
            self._out[row] = [[] for _ in range(level + 1)]
            self._in[row] = [set() for _ in range(level + 1)]
        else:
            row = len(self._id_of)
            if row >= self._vectors.shape[0]:
                self._grow(row + 1)
            self._id_of.append(item_id)
            self._levels.append(level)
            self._out.append([[] for _ in range(level + 1)])
            self._in.append([set() for _ in range(level + 1)])
        self._vectors[row] = vector
        self._norms[row] = float(vector @ vector)
        if self._pq is not None:
            self._codes[row] = self._pq.encode(vector[None, :])[0]
        self._row_of[item_id] = row
        return row

    def _release_row(self, item_id: int) -> None:
        row = self._row_of.pop(item_id)
        self._id_of[row] = _FREE
        self._free.append(row)

    # ------------------------------------------------------------------
    # Distance helpers
    # ------------------------------------------------------------------
    def _dists_rows(
        self,
        query: np.ndarray,
        rows: np.ndarray,
        qq: float,
        table: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """*Squared* distances from ``query`` to stored rows — the hot path.

        One fancy-index + GEMV per call, via the norm expansion
        ``||v-q||^2 = ||v||^2 - 2 v·q + ||q||^2`` with ``||v||^2`` cached
        (``qq`` is the precomputed squared query norm). ``table`` switches
        the kernel to ADC lookups against the attached PQ codes. Squared L2
        is monotonic in true L2, so every traversal comparison is unchanged;
        public entry points take one square root at the API boundary.
        """
        if table is not None:
            return self._pq.adc_lookup(table, self._codes[rows], squared=True)
        sq = self._norms[rows] - 2.0 * (self._vectors[rows] @ query)
        sq += qq
        return sq

    @staticmethod
    def _rows_array(rows: Sequence[int]) -> np.ndarray:
        return np.fromiter(rows, dtype=np.int64, count=len(rows))

    def _adj_rows(self, row: int, layer: int) -> np.ndarray:
        """Adjacency of ``(row, layer)`` as a cached int64 row array.

        The cache is invalidated wholesale on any graph mutation; during
        pure query workloads each adjacency list is materialized exactly
        once instead of being rebuilt on every hop.
        """
        key = (row, layer)
        arr = self._adj_cache.get(key)
        if arr is None:
            arr = np.array(self._out[row][layer], dtype=np.int64)
            self._adj_cache[key] = arr
        return arr

    # ------------------------------------------------------------------
    # Core search
    # ------------------------------------------------------------------
    def _greedy_descend(
        self,
        query: np.ndarray,
        qq: float,
        start: int,
        top: int,
        stop: int,
        table: Optional[np.ndarray] = None,
    ) -> Tuple[int, float]:
        """Greedy single-entry search from layer ``top`` down to ``stop+1``.

        Returns ``(row, squared distance)`` of the closest node found, used
        as the entry point for the next lower layer.
        """
        current = start
        cur_dist = float(
            self._dists_rows(query, np.asarray([current], dtype=np.int64), qq, table)[0]
        )
        for layer in range(top, stop, -1):
            improved = True
            while improved:
                improved = False
                neigh = self._adj_rows(current, layer)
                if not neigh.size:
                    continue
                dists = self._dists_rows(query, neigh, qq, table)
                best = int(np.argmin(dists))
                if dists[best] < cur_dist:
                    cur_dist = float(dists[best])
                    current = int(neigh[best])
                    improved = True
        return current, cur_dist

    def _search_layer(
        self,
        query: np.ndarray,
        qq: float,
        entry_row: int,
        ef: int,
        layer: int,
        table: Optional[np.ndarray] = None,
        entry_dist: Optional[float] = None,
    ) -> List[Tuple[float, int, int]]:
        """Beam search at one layer; returns up to ``ef`` triples of
        ``(squared dist, id, row)`` sorted ascending by ``(dist, id)``.

        Heap ordering ties break on the external id (never the row), so the
        result sequence is invariant under :meth:`reorder`. Per hop, the
        frontier filter is a vectorized mask over a row-indexed visited
        array, and candidates that cannot beat the current beam worst are
        dropped in bulk before the heap loop (exact: the worst only shrinks,
        so a candidate at or beyond it can never be admitted later).
        """
        if entry_dist is None:
            entry_dist = float(
                self._dists_rows(
                    query, np.asarray([entry_row], dtype=np.int64), qq, table
                )[0]
            )
        entry_id = self._id_of[entry_row]
        visited = np.zeros(len(self._id_of), dtype=bool)
        visited[entry_row] = True
        # Candidate min-heap by (dist, id); result max-heap via negated dist.
        candidates: List[Tuple[float, int, int]] = [(entry_dist, entry_id, entry_row)]
        results: List[Tuple[float, int, int]] = [(-entry_dist, entry_id, entry_row)]
        id_of = self._id_of
        push, pop = heapq.heappush, heapq.heappop
        while candidates:
            cand_dist, _, cand_row = pop(candidates)
            worst = -results[0][0]
            full = len(results) >= ef
            if full and cand_dist > worst:
                break
            adj = self._adj_rows(cand_row, layer)
            fresh = adj[~visited[adj]]
            if not fresh.size:
                continue
            visited[fresh] = True
            dists = self._dists_rows(query, fresh, qq, table)
            if full:
                keep = dists < worst
                if not keep.all():
                    fresh = fresh[keep]
                    if not fresh.size:
                        continue
                    dists = dists[keep]
            for row, nd in zip(fresh.tolist(), dists.tolist()):
                if nd < worst or len(results) < ef:
                    nid = id_of[row]
                    push(candidates, (nd, nid, row))
                    push(results, (-nd, nid, row))
                    if len(results) > ef:
                        pop(results)
                    worst = -results[0][0]
        out = [(-d, i, r) for d, i, r in results]
        out.sort()
        return out

    # ------------------------------------------------------------------
    # Neighbor selection (simple heuristic from the paper's Algorithm 4)
    # ------------------------------------------------------------------
    def _select_neighbors(
        self, candidates: List[Tuple[float, int, int]], m: int
    ) -> List[int]:
        """Diversified neighbor selection: keep a candidate only if it is
        closer to the query than to every already-selected neighbor. Falls
        back to nearest-first fill if the heuristic under-selects.

        ``candidates`` are ``(squared dist_to_query, id, row)`` triples in
        the order to consider; returns selected rows. The candidate-candidate
        distance block is computed once as a matrix instead of per pair, and
        the dominance test compares squared distances on both sides (the
        ordering is identical to true L2).
        """
        if not candidates:
            return []
        rows = self._rows_array([r for _, _, r in candidates])
        dists = np.asarray([d for d, _, _ in candidates])
        vecs = self._vectors[rows]
        norms = self._norms[rows]
        cross = norms[:, None] + norms[None, :] - 2.0 * (vecs @ vecs.T)
        np.maximum(cross, 0.0, out=cross)
        selected: List[int] = []
        skipped: List[int] = []
        for i in range(len(candidates)):
            if len(selected) >= m:
                break
            row_cross = cross[i]
            dominated = False
            for j in selected:
                if row_cross[j] < dists[i]:
                    dominated = True
                    break
            if dominated:
                skipped.append(i)
            else:
                selected.append(i)
        for i in skipped:
            if len(selected) >= m:
                break
            selected.append(i)
        return [int(rows[i]) for i in selected]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, item_id: int, vector: np.ndarray) -> None:
        """Insert a new element; if ``item_id`` exists, re-link with the new
        vector (dynamic update)."""
        item_id = int(item_id)
        vector = np.ascontiguousarray(np.asarray(vector, dtype=np.float64).ravel())
        if vector.shape[0] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {vector.shape[0]}")
        self._adj_cache.clear()
        if item_id in self._row_of:
            level = self._levels[self._row_of[item_id]]
            self._detach(item_id)
            self._release_row(item_id)
        else:
            level = int(-math.log(max(self._rng.random(), 1e-300)) * self._mL)
        row = self._alloc_row(item_id, vector, level)

        if self._entry is None:
            self._entry = item_id
            self._max_level = level
            return

        qq = self._norms[row]
        entry_row = self._row_of[self._entry]
        if level < self._max_level:
            entry_row, _ = self._greedy_descend(
                vector, qq, entry_row, self._max_level, level
            )

        for layer in range(min(level, self._max_level), -1, -1):
            candidates = self._search_layer(
                vector, qq, entry_row, self.ef_construction, layer
            )
            m = self.M0 if layer == 0 else self.M
            chosen = self._select_neighbors(candidates, m)
            self._out[row][layer] = list(chosen)
            for crow in chosen:
                self._in[crow][layer].add(row)
                self._in[row][layer].add(crow)
                cadj = self._out[crow][layer]
                cadj.append(row)
                if len(cadj) > m:
                    self._prune(crow, layer, m)
            if candidates:
                entry_row = candidates[0][2]

        # The layer searches above populate the adjacency cache from the
        # pre-link graph; linking then mutates it, so flush again on exit.
        self._adj_cache.clear()

        if level > self._max_level:
            self._max_level = level
            self._entry = item_id

    def _prune(self, row: int, layer: int, limit: int) -> None:
        """Shrink a node's adjacency list back to ``limit`` using the
        diversified selection heuristic, keeping reverse edges consistent."""
        self._adj_cache.clear()
        adj = self._out[row][layer]
        rows = self._rows_array(adj)
        dists = self._dists_rows(self._vectors[row], rows, self._norms[row])
        order = np.argsort(dists, kind="stable")
        cand = [(float(dists[i]), self._id_of[adj[i]], adj[i]) for i in order]
        kept = self._select_neighbors(cand, limit)
        dropped = set(adj) - set(kept)
        self._out[row][layer] = kept
        for other in dropped:
            self._in[other][layer].discard(row)

    def add_batch(self, item_ids: np.ndarray, vectors: np.ndarray) -> None:
        """Insert or update many vectors sequentially."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        item_ids = np.asarray(item_ids).ravel()
        if len(item_ids) != len(vectors):
            raise ValueError("item_ids and vectors length mismatch")
        self._grow(len(self._row_of) + len(item_ids))
        for i, v in zip(item_ids, vectors):
            self.add(int(i), v)

    # ``update`` is the paper's dynamic-embedding path; add() handles both.
    update = add

    def _detach(self, item_id: int) -> None:
        """Remove all edges touching ``item_id`` and repair the entry point.

        O(degree) via the reverse-edge sets: only the node's own out-edges
        and the nodes that link *to* it are visited, never the whole graph.
        """
        self._adj_cache.clear()
        row = self._row_of[item_id]
        for layer in range(self._levels[row] + 1):
            for other in self._out[row][layer]:
                self._in[other][layer].discard(row)
            for other in self._in[row][layer]:
                try:
                    self._out[other][layer].remove(row)
                except ValueError:  # pragma: no cover - defensive
                    pass
            self._out[row][layer] = []
            self._in[row][layer] = set()
        if self._entry == item_id:
            self._entry = None
            self._max_level = -1
            for oid, orow in self._row_of.items():
                if oid != item_id and self._levels[orow] > self._max_level:
                    self._max_level = self._levels[orow]
                    self._entry = oid

    def remove(self, item_id: int) -> None:
        """Delete an element entirely."""
        item_id = int(item_id)
        if item_id not in self._row_of:
            raise KeyError(item_id)
        self._detach(item_id)
        self._release_row(item_id)

    # ------------------------------------------------------------------
    # Product-Quantization candidate scoring
    # ------------------------------------------------------------------
    def attach_pq(self, pq: "ProductQuantizer", default: bool = False) -> None:
        """Attach a *trained* ProductQuantizer for ADC candidate scoring.

        Every stored vector is encoded to uint8 codes (kept in sync on
        add/update); ``search(..., mode="pq")`` then scores traversal
        candidates via ADC lookup tables and re-ranks the final beam with
        exact distances. ``default=True`` makes ``mode=None`` searches use
        PQ scoring without callers opting in per query.
        """
        if not pq.is_trained:
            raise RuntimeError("attach_pq requires a trained ProductQuantizer")
        if pq.dim != self.dim:
            raise ValueError(f"PQ dim {pq.dim} != index dim {self.dim}")
        self._pq = pq
        self._pq_default = bool(default)
        self._codes = np.zeros((self._vectors.shape[0], pq.m), dtype=np.uint8)
        live = [row for row in self._row_of.values()]
        if live:
            rows = self._rows_array(live)
            self._codes[rows] = pq.encode(self._vectors[rows])

    def detach_pq(self) -> None:
        """Drop the attached quantizer; searches revert to exact scoring."""
        self._pq = None
        self._codes = None
        self._pq_default = False

    def _resolve_mode(self, query: np.ndarray, mode: Optional[str]):
        """Map a search ``mode`` to ``(adc_table_or_None, uses_pq)``."""
        if mode is None:
            mode = "pq" if (self._pq is not None and self._pq_default) else "exact"
        if mode == "exact":
            return None, False
        if mode == "pq":
            if self._pq is None:
                raise RuntimeError("mode='pq' requires attach_pq() first")
            return self._pq.adc_table(query), True
        raise ValueError(f"unknown search mode {mode!r}")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def search(
        self,
        query: np.ndarray,
        k: int,
        ef: Optional[int] = None,
        exclude: Optional[int] = None,
        mode: Optional[str] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Approximate k-NN. Returns ``(ids, distances)`` ascending.

        ``exclude`` drops one id from the results; the beam is widened by
        one slot so the exclusion cannot under-fill the k requested results.
        ``mode`` selects the candidate-scoring kernel: ``"exact"`` (default)
        or ``"pq"`` (ADC against the attached quantizer, exact re-rank).
        """
        if self._entry is None:
            return np.empty(0, dtype=np.int64), np.empty(0)
        query = np.asarray(query, dtype=np.float64).ravel()
        if query.shape[0] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {query.shape[0]}")
        k = int(k)
        ef_eff = max(int(ef if ef is not None else self.ef_search), k)
        if exclude is not None:
            # The beam must hold k survivors plus the excluded id.
            ef_eff += 1
        table, uses_pq = self._resolve_mode(query, mode)
        qq = float(query @ query)
        entry_row, entry_dist = self._greedy_descend(
            query, qq, self._row_of[self._entry], self._max_level, 0, table
        )
        results = self._search_layer(
            query, qq, entry_row, ef_eff, 0, table, entry_dist
        )
        if exclude is not None:
            excl = int(exclude)
            results = [t for t in results if t[1] != excl]
        if uses_pq and results:
            # Re-rank the surviving beam with exact (squared) distances.
            rows = self._rows_array([r for _, _, r in results])
            exact = self._dists_rows(query, rows, qq)
            results = sorted(
                (float(d), i, r)
                for d, (_, i, r) in zip(exact, results)
            )
        k = min(k, len(results))
        ids = np.asarray([i for _, i, _ in results[:k]], dtype=np.int64)
        # Traversal works in squared L2; convert once at the API boundary.
        sq = np.asarray([d for d, _, _ in results[:k]], dtype=np.float64)
        np.maximum(sq, 0.0, out=sq)
        return ids, np.sqrt(sq)

    def search_batch(
        self,
        queries: np.ndarray,
        k: int,
        ef: Optional[int] = None,
        exclude: Optional[np.ndarray] = None,
        mode: Optional[str] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """k-NN for many queries; same contract as brute-force
        ``search_batch``: ``(ids, dists)`` of shape ``(n_queries, k)``, rows
        padded with ``-1``/``inf``.

        Exact-mode batches run the layer-0 beams in *lockstep*: every
        macro-hop pops one candidate per still-active query, concatenates
        their frontier adjacencies, and scores them in a single gather +
        einsum call — amortizing the per-hop numpy dispatch overhead over
        the whole batch. Queries are independent, so lockstep is pure
        scheduling: each row of the output matches calling :meth:`search`
        on that query alone (distances agree up to floating-point summation
        order in the fused kernel; ids are identical away from exact ties).
        ``exclude[i]`` (ids, ``-1`` = none) mirrors the batched brute-force
        semantics. PQ mode builds one ADC table per query and stays on the
        per-query path.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        nq = queries.shape[0]
        k = int(k)
        if exclude is not None:
            exclude = np.asarray(exclude).ravel()
            if exclude.shape[0] != nq:
                raise ValueError("exclude and queries length mismatch")
        out_ids = np.full((nq, k), -1, dtype=np.int64)
        out_d = np.full((nq, k), np.inf)
        if self._entry is None or nq == 0:
            return out_ids, out_d
        if queries.shape[1] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {queries.shape[1]}")
        resolved = mode
        if resolved is None:
            resolved = "pq" if (self._pq is not None and self._pq_default) else "exact"
        if resolved == "pq":
            for qi in range(nq):
                excl = None
                if exclude is not None and exclude[qi] >= 0:
                    excl = int(exclude[qi])
                ids, dists = self.search(
                    queries[qi], k, ef=ef, exclude=excl, mode="pq"
                )
                out_ids[qi, : ids.shape[0]] = ids
                out_d[qi, : ids.shape[0]] = dists
            return out_ids, out_d
        if resolved != "exact":
            raise ValueError(f"unknown search mode {resolved!r}")

        base_ef = max(int(ef if ef is not None else self.ef_search), k)
        efs = np.full(nq, base_ef, dtype=np.int64)
        if exclude is not None:
            # Same widening as search(): the beam must hold k survivors
            # plus the excluded id — only for queries that exclude one.
            efs[exclude >= 0] += 1
        qq = np.einsum("ij,ij->i", queries, queries)
        # Chunk so the (chunk, rows) visited matrix stays modest.
        n_rows = max(len(self._id_of), 1)
        chunk = max(1, min(256, (32 << 20) // n_rows))
        for start in range(0, nq, chunk):
            stop = min(nq, start + chunk)
            per_query = self._search_layer0_batch(
                queries[start:stop], qq[start:stop], efs[start:stop]
            )
            for off, results in enumerate(per_query):
                qi = start + off
                if exclude is not None and exclude[qi] >= 0:
                    excl = int(exclude[qi])
                    results = [t for t in results if t[1] != excl]
                m = min(k, len(results))
                if m:
                    out_ids[qi, :m] = [i for _, i, _ in results[:m]]
                    sq = np.asarray([d for d, _, _ in results[:m]])
                    np.maximum(sq, 0.0, out=sq)
                    out_d[qi, :m] = np.sqrt(sq)
        return out_ids, out_d

    def _search_layer0_batch(
        self, queries: np.ndarray, qq: np.ndarray, efs: np.ndarray
    ) -> List[List[Tuple[float, int, int]]]:
        """Lockstep layer-0 beam search for a chunk of queries.

        Per macro-round, one candidate is popped per active query; all their
        frontier adjacencies are scored in a single vectorized call. Each
        query's pop/admit sequence replays exactly what :meth:`_search_layer`
        would do (queries share no state); the only difference from the
        per-query path is the fused distance kernel's summation order, a
        1-ulp-level effect on the returned distances.
        """
        nq = queries.shape[0]
        id_of = self._id_of
        push, pop = heapq.heappush, heapq.heappop
        ef_of = [int(e) for e in efs]
        entry_row = self._row_of[self._entry]
        visited = np.zeros((nq, len(id_of)), dtype=bool)
        candidates: List[List[Tuple[float, int, int]]] = []
        results: List[List[Tuple[float, int, int]]] = []
        for i in range(nq):
            row, d = self._greedy_descend(
                queries[i], float(qq[i]), entry_row, self._max_level, 0
            )
            nid = id_of[row]
            visited[i, row] = True
            candidates.append([(d, nid, row)])
            results.append([(-d, nid, row)])
        worst_of = np.empty(nq)
        active = list(range(nq))
        while active:
            popped_q: List[int] = []
            popped_rows: List[int] = []
            for i in active:
                cand = candidates[i]
                if not cand:
                    continue
                d, _, row = pop(cand)
                res = results[i]
                if len(res) >= ef_of[i] and d > -res[0][0]:
                    continue
                popped_q.append(i)
                popped_rows.append(row)
            active = popped_q
            if not popped_q:
                break
            adjs = [self._adj_rows(r, 0) for r in popped_rows]
            lens = [a.size for a in adjs]
            if not any(lens):
                continue
            rows_all = np.concatenate(adjs)
            qarr = np.repeat(np.asarray(popped_q, dtype=np.int64), lens)
            fresh = ~visited[qarr, rows_all]
            if not fresh.any():
                continue
            rows_f = rows_all[fresh]
            q_f = qarr[fresh]
            visited[q_f, rows_f] = True
            gathered = self._vectors[rows_f]
            sq = self._norms[rows_f] - 2.0 * np.einsum(
                "ij,ij->i", gathered, queries[q_f]
            )
            sq += qq[q_f]
            for i in popped_q:
                res = results[i]
                worst_of[i] = -res[0][0] if len(res) >= ef_of[i] else np.inf
            keep = sq < worst_of[q_f]
            if not keep.all():
                rows_f = rows_f[keep]
                q_f = q_f[keep]
                sq = sq[keep]
            for i, row, nd in zip(q_f.tolist(), rows_f.tolist(), sq.tolist()):
                res = results[i]
                if nd < -res[0][0] or len(res) < ef_of[i]:
                    nid = id_of[row]
                    push(candidates[i], (nd, nid, row))
                    push(res, (-nd, nid, row))
                    if len(res) > ef_of[i]:
                        pop(res)
        out: List[List[Tuple[float, int, int]]] = []
        for res in results:
            triples = [(-d, i, r) for d, i, r in res]
            triples.sort()
            out.append(triples)
        return out

    def neighbors_within(
        self,
        query: np.ndarray,
        radius: float,
        ef: Optional[int] = None,
        exclude: Optional[int] = None,
        max_neighbors: int = 512,
        mode: Optional[str] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Approximate range query: beam-search then filter by ``radius``.

        ``max_neighbors`` caps the beam (paper's ``neighbormax``-scale bound).
        """
        ids, dists = self.search(
            query, k=max_neighbors, ef=ef, exclude=exclude, mode=mode
        )
        keep = dists <= radius
        return ids[keep], dists[keep]

    def neighbors_within_batch(
        self,
        queries: np.ndarray,
        radius: float,
        exclude: Optional[np.ndarray] = None,
        max_neighbors: int = 512,
        ef: Optional[int] = None,
        mode: Optional[str] = None,
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Batched range query with the brute-force backend's signature.

        Returns one ``(ids, dists)`` pair per query, distance-sorted and
        truncated to ``max_neighbors``; ``exclude[i]`` (if given, ``-1`` =
        none) removes one id from query ``i``'s results. Runs on the
        lockstep batched beam (see :meth:`search_batch`), so the whole
        scorer sweep shares vectorized distance calls.
        """
        ids_mat, d_mat = self.search_batch(
            queries, k=max_neighbors, ef=ef, exclude=exclude, mode=mode
        )
        results: List[Tuple[np.ndarray, np.ndarray]] = []
        for qi in range(ids_mat.shape[0]):
            keep = (ids_mat[qi] >= 0) & (d_mat[qi] <= radius)
            results.append((ids_mat[qi][keep], d_mat[qi][keep]))
        return results

    # ------------------------------------------------------------------
    # Graph reordering (cache locality)
    # ------------------------------------------------------------------
    def reorder(self, strategy: str = "bfs") -> np.ndarray:
        """Relabel storage rows for cache-efficient traversal.

        ``"bfs"`` walks the layer-0 graph breadth-first from the entry point
        so hop-adjacent nodes land in adjacent rows; ``"degree"`` packs
        nodes by descending layer-0 degree (hubs first). Freed rows are
        compacted away. Search results are bit-identical before and after:
        all traversal ordering keys on ``(distance, external id)``.

        Returns the external ids in their new row order.
        """
        live = list(self._row_of.values())
        if not live:
            return np.empty(0, dtype=np.int64)
        order: List[int] = []
        if strategy == "bfs":
            seen = [False] * len(self._id_of)
            start = self._row_of[self._entry]
            queue = deque([start])
            seen[start] = True
            while queue:
                row = queue.popleft()
                order.append(row)
                for nxt in self._out[row][0]:
                    if not seen[nxt]:
                        seen[nxt] = True
                        queue.append(nxt)
            # Rows unreachable from the entry at layer 0, insertion order.
            for row in live:
                if not seen[row]:
                    order.append(row)
        elif strategy == "degree":
            order = sorted(live, key=lambda r: -len(self._out[r][0]))
        else:
            raise ValueError(f"unknown reorder strategy {strategy!r}")

        new_of_old = {old: new for new, old in enumerate(order)}
        n = len(order)
        vectors = np.empty_like(self._vectors)
        norms = np.empty_like(self._norms)
        rows_arr = self._rows_array(order)
        vectors[:n] = self._vectors[rows_arr]
        norms[:n] = self._norms[rows_arr]
        if self._codes is not None:
            codes = np.zeros_like(self._codes)
            codes[:n] = self._codes[rows_arr]
            self._codes = codes
        self._levels = [self._levels[old] for old in order]
        self._out = [
            [[new_of_old[t] for t in adj] for adj in self._out[old]]
            for old in order
        ]
        self._in = [
            [{new_of_old[t] for t in adj} for adj in self._in[old]]
            for old in order
        ]
        self._id_of = [self._id_of[old] for old in order]
        # Preserve the id dict's insertion order (it backs the `ids` prop).
        self._row_of = {iid: new_of_old[old] for iid, old in self._row_of.items()}
        self._vectors = vectors
        self._norms = norms
        self._free = []
        self._adj_cache.clear()
        return np.asarray(self._id_of, dtype=np.int64)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Serialize the index to an ``.npz`` archive.

        Stores vectors, per-node levels, flattened adjacency, and the
        construction parameters. The RNG state and any attached quantizer
        are not saved: a loaded index continues with fresh level draws and
        exact scoring, which only affects *future* inserts' layer
        assignment, not correctness.
        """
        import json
        from pathlib import Path

        ids = list(self._row_of)
        rows = [self._row_of[i] for i in ids]
        vectors = (
            self._vectors[self._rows_array(rows)]
            if ids else np.empty((0, self.dim))
        )
        levels = np.asarray([self._levels[r] for r in rows], dtype=np.int64)
        # Flatten adjacency as (node_pos, layer, neighbor_id) triples.
        triples = []
        for pos, r in enumerate(rows):
            for layer, neigh in enumerate(self._out[r]):
                for nrow in neigh:
                    triples.append((pos, layer, self._id_of[nrow]))
        adjacency = (
            np.asarray(triples, dtype=np.int64)
            if triples else np.empty((0, 3), dtype=np.int64)
        )
        header = json.dumps({
            "dim": self.dim, "M": self.M,
            "ef_construction": self.ef_construction,
            "ef_search": self.ef_search,
            "entry": self._entry, "max_level": self._max_level,
        })
        np.savez(
            Path(path),
            ids=np.asarray(ids, dtype=np.int64),
            vectors=vectors,
            levels=levels,
            adjacency=adjacency,
            header=np.frombuffer(header.encode("utf-8"), dtype=np.uint8),
        )

    @classmethod
    def load(cls, path, rng: RngLike = None) -> "HNSWIndex":
        """Reconstruct an index saved with :meth:`save`."""
        import json
        from pathlib import Path

        with np.load(Path(path)) as data:
            header = json.loads(bytes(data["header"]).decode("utf-8"))
            ids = data["ids"]
            idx = cls(
                header["dim"], M=header["M"],
                ef_construction=header["ef_construction"],
                ef_search=header["ef_search"], rng=rng,
                capacity=max(len(ids), 1),
            )
            vectors = data["vectors"]
            levels = data["levels"]
            for i, v, lvl in zip(ids, vectors, levels):
                idx._alloc_row(
                    int(i),
                    np.ascontiguousarray(v, dtype=np.float64),
                    int(lvl),
                )
            for pos, layer, nid in data["adjacency"]:
                srow = idx._row_of[int(ids[pos])]
                trow = idx._row_of[int(nid)]
                idx._out[srow][int(layer)].append(trow)
                idx._in[trow][int(layer)].add(srow)
            idx._entry = header["entry"]
            idx._max_level = header["max_level"]
        return idx

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def check_symmetric_reachability(self) -> float:
        """Fraction of layer-0 edges that are bidirectional (diagnostic)."""
        total = 0
        sym = 0
        for row in self._row_of.values():
            for other in self._out[row][0]:
                total += 1
                if other in self._in[row][0]:
                    sym += 1
        return sym / total if total else 1.0

    def validate_invariants(self) -> None:
        """Raise ``AssertionError`` if internal bookkeeping is inconsistent.

        Checks the id↔row bijection, the forward/reverse edge mirror, edge
        endpoints' liveness and layer bounds, and the entry point's level.
        Intended for tests; O(edges).
        """
        live_rows = set(self._row_of.values())
        assert len(live_rows) == len(self._row_of), "row map is not injective"
        for iid, row in self._row_of.items():
            assert 0 <= row < len(self._id_of), f"row {row} out of range"
            assert self._id_of[row] == iid, f"id_of mismatch at row {row}"
        for row in self._free:
            assert self._id_of[row] == _FREE, "free row still has an id"
            assert row not in live_rows, "free row is also live"
        for row in live_rows:
            assert len(self._out[row]) == self._levels[row] + 1
            assert len(self._in[row]) == self._levels[row] + 1
            for layer, adj in enumerate(self._out[row]):
                assert len(set(adj)) == len(adj), "duplicate out-edge"
                for t in adj:
                    assert t in live_rows, "edge to dead row"
                    assert layer <= self._levels[t], "edge above target level"
                    assert row in self._in[t][layer], "missing reverse edge"
            for layer, rev in enumerate(self._in[row]):
                for s in rev:
                    assert s in live_rows, "reverse edge from dead row"
                    assert row in self._out[s][layer], "stale reverse edge"
        if self._entry is not None:
            assert self._entry in self._row_of, "entry id not indexed"
            entry_row = self._row_of[self._entry]
            assert self._levels[entry_row] == self._max_level, (
                "entry level != max_level"
            )
