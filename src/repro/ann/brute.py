"""Exact k-nearest-neighbor index.

Serves two roles: a correctness oracle for HNSW recall tests, and a drop-in
neighbor-search backend for small datasets where exact search is cheaper
than maintaining a graph index.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.ann.distance import l2_distances

__all__ = ["BruteForceIndex"]


class BruteForceIndex:
    """Flat exact index with the same interface as :class:`HNSWIndex`.

    Supports incremental ``add``/``update`` keyed by integer ids, like the
    paper's dynamically updated HNSW index (embeddings change every time a
    sample is re-processed).
    """

    def __init__(self, dim: int, capacity: int = 1024) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = int(dim)
        self._data = np.empty((capacity, dim), dtype=np.float64)
        self._ids: List[int] = []
        self._slot_of: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, item_id: int) -> bool:
        return int(item_id) in self._slot_of

    @property
    def ids(self) -> List[int]:
        return list(self._ids)

    def vector(self, item_id: int) -> np.ndarray:
        """Return a copy of the stored vector for ``item_id``."""
        return self._data[self._slot_of[int(item_id)]].copy()

    # ------------------------------------------------------------------
    def add(self, item_id: int, vector: np.ndarray) -> None:
        """Insert or update a single vector."""
        item_id = int(item_id)
        vector = np.asarray(vector, dtype=np.float64).ravel()
        if vector.shape[0] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {vector.shape[0]}")
        slot = self._slot_of.get(item_id)
        if slot is None:
            slot = len(self._ids)
            if slot >= self._data.shape[0]:
                grown = np.empty((max(4, 2 * self._data.shape[0]), self.dim))
                grown[:slot] = self._data[:slot]
                self._data = grown
            self._ids.append(item_id)
            self._slot_of[item_id] = slot
        self._data[slot] = vector

    def add_batch(self, item_ids: np.ndarray, vectors: np.ndarray) -> None:
        """Insert or update many vectors at once."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        item_ids = np.asarray(item_ids).ravel()
        if len(item_ids) != len(vectors):
            raise ValueError("item_ids and vectors length mismatch")
        for i, v in zip(item_ids, vectors):
            self.add(int(i), v)

    # ``update`` is an alias: brute-force storage overwrites in place.
    update = add

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Snapshot of ids (slot order) and stored vectors."""
        n = len(self._ids)
        return {
            "ids": np.asarray(self._ids, dtype=np.int64),
            "vectors": self._data[:n].copy(),
        }

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore a :meth:`state_dict` snapshot (slot order preserved)."""
        ids = np.asarray(state["ids"], dtype=np.int64)
        vectors = np.asarray(state["vectors"], dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != self.dim:
            raise ValueError("vector snapshot does not match index dim")
        if ids.shape[0] != vectors.shape[0]:
            raise ValueError("ids and vectors length mismatch")
        if vectors.shape[0] > self._data.shape[0]:
            self._data = np.empty((vectors.shape[0], self.dim), dtype=np.float64)
        self._data[: vectors.shape[0]] = vectors
        self._ids = [int(i) for i in ids]
        self._slot_of = {int(i): slot for slot, i in enumerate(ids)}

    def remove(self, item_id: int) -> None:
        """Delete a vector by id (swap-with-last)."""
        item_id = int(item_id)
        slot = self._slot_of.pop(item_id)
        last_slot = len(self._ids) - 1
        last_id = self._ids[last_slot]
        if slot != last_slot:
            self._data[slot] = self._data[last_slot]
            self._ids[slot] = last_id
            self._slot_of[last_id] = slot
        self._ids.pop()

    # ------------------------------------------------------------------
    def search(
        self, query: np.ndarray, k: int, exclude: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Exact k-NN search.

        Returns ``(ids, distances)`` sorted ascending by distance. ``exclude``
        drops one id from the results (typically the query point itself when
        searching for a stored sample's neighbors).
        """
        n = len(self._ids)
        if n == 0:
            return np.empty(0, dtype=np.int64), np.empty(0)
        dists = l2_distances(query, self._data[:n])
        order = np.argsort(dists, kind="stable")
        ids = np.asarray(self._ids, dtype=np.int64)[order]
        dists = dists[order]
        if exclude is not None:
            keep = ids != int(exclude)
            ids, dists = ids[keep], dists[keep]
        k = min(int(k), len(ids))
        return ids[:k], dists[:k]

    def search_batch(
        self, queries: np.ndarray, k: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Exact k-NN for many queries at once (one GEMM).

        Returns ``(ids, dists)`` of shape ``(n_queries, k)``; rows are padded
        with ``-1``/``inf`` when fewer than ``k`` points are stored.
        """
        from repro.ann.distance import l2_distance_matrix

        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        nq = queries.shape[0]
        n = len(self._ids)
        k = int(k)
        out_ids = np.full((nq, k), -1, dtype=np.int64)
        out_d = np.full((nq, k), np.inf)
        if n == 0:
            return out_ids, out_d
        dmat = l2_distance_matrix(queries, self._data[:n])
        ids = np.asarray(self._ids, dtype=np.int64)
        kk = min(k, n)
        part = np.argpartition(dmat, kk - 1, axis=1)[:, :kk]
        pd = np.take_along_axis(dmat, part, axis=1)
        order = np.argsort(pd, axis=1, kind="stable")
        sorted_idx = np.take_along_axis(part, order, axis=1)
        out_ids[:, :kk] = ids[sorted_idx]
        out_d[:, :kk] = np.take_along_axis(dmat, sorted_idx, axis=1)
        return out_ids, out_d

    def neighbors_within_batch(
        self,
        queries: np.ndarray,
        radius: float,
        exclude: Optional[np.ndarray] = None,
        max_neighbors: int = 512,
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Vectorized range query for many queries.

        Returns one ``(ids, dists)`` pair per query, distance-sorted and
        truncated to ``max_neighbors``. ``exclude[i]`` (if given) removes one
        id from query ``i``'s results — used to drop self-matches when
        queries are stored points.
        """
        from repro.ann.distance import l2_distance_matrix

        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        n = len(self._ids)
        if n == 0:
            empty = (np.empty(0, dtype=np.int64), np.empty(0))
            return [empty for _ in range(queries.shape[0])]
        dmat = l2_distance_matrix(queries, self._data[:n])
        ids = np.asarray(self._ids, dtype=np.int64)
        results: List[Tuple[np.ndarray, np.ndarray]] = []
        for qi in range(queries.shape[0]):
            keep = dmat[qi] <= radius
            if exclude is not None and exclude[qi] >= 0:
                keep &= ids != int(exclude[qi])
            rid = ids[keep]
            rd = dmat[qi, keep]
            order = np.argsort(rd, kind="stable")[:max_neighbors]
            results.append((rid[order], rd[order]))
        return results

    def neighbors_within(
        self,
        query: np.ndarray,
        radius: float,
        exclude: Optional[int] = None,
        max_neighbors: int = 512,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """All stored points with distance <= ``radius`` from ``query``,
        distance-sorted and truncated to ``max_neighbors`` (matching the
        batched variant's contract)."""
        n = len(self._ids)
        if n == 0:
            return np.empty(0, dtype=np.int64), np.empty(0)
        dists = l2_distances(query, self._data[:n])
        ids = np.asarray(self._ids, dtype=np.int64)
        keep = dists <= radius
        if exclude is not None:
            keep &= ids != int(exclude)
        ids, dists = ids[keep], dists[keep]
        order = np.argsort(dists, kind="stable")[:max_neighbors]
        return ids[order], dists[order]
