"""Vectorized distance kernels.

Paper Eq. 1 uses Euclidean distance between embeddings. All kernels are
written against 2-D float arrays and use the expansion
``||x-y||^2 = ||x||^2 + ||y||^2 - 2 x·y`` so the hot path is a single GEMM
(see the scientific-python optimization guidance: vectorize, avoid copies).

Precision note: the expansion cancels catastrophically for near-identical
vectors with large norms — expect ~1e-8 absolute error on distances that are
truly zero. That is far below the embedding scales the graph construction
thresholds on; callers needing exact zeros should compare ids, not distances.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "l2_distances",
    "l2_distance_matrix",
    "pairwise_l2",
    "cosine_distance_matrix",
]


def _as_2d(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    if x.ndim == 1:
        return x[None, :]
    if x.ndim != 2:
        raise ValueError(f"expected 1-D or 2-D array, got ndim={x.ndim}")
    return x


def l2_distances(query: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Euclidean distances from one query vector to each row of ``points``.

    Returns shape ``(len(points),)``.
    """
    query = np.asarray(query, dtype=np.float64).ravel()
    points = _as_2d(points)
    if points.shape[1] != query.shape[0]:
        raise ValueError(
            f"dimension mismatch: query has {query.shape[0]}, points have {points.shape[1]}"
        )
    diff_sq = np.einsum("ij,ij->i", points, points) - 2.0 * (points @ query)
    diff_sq += query @ query
    np.maximum(diff_sq, 0.0, out=diff_sq)
    return np.sqrt(diff_sq)


def l2_distance_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Full distance matrix between rows of ``a`` and rows of ``b``.

    Returns shape ``(len(a), len(b))``.
    """
    a, b = _as_2d(a), _as_2d(b)
    if a.shape[1] != b.shape[1]:
        raise ValueError("dimension mismatch between a and b")
    sq = (
        np.einsum("ij,ij->i", a, a)[:, None]
        + np.einsum("ij,ij->i", b, b)[None, :]
        - 2.0 * (a @ b.T)
    )
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq)


def pairwise_l2(points: np.ndarray) -> np.ndarray:
    """Symmetric pairwise distance matrix of one point set."""
    d = l2_distance_matrix(points, points)
    # Enforce exact zeros on the diagonal (fp noise otherwise).
    np.fill_diagonal(d, 0.0)
    return d


def cosine_distance_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Cosine distance (1 - cosine similarity) matrix.

    Zero vectors are treated as maximally distant (distance 1) rather than
    raising, so degenerate embeddings early in training don't crash scoring.
    """
    a, b = _as_2d(a), _as_2d(b)
    na = np.linalg.norm(a, axis=1)
    nb = np.linalg.norm(b, axis=1)
    denom = np.outer(na, nb)
    with np.errstate(divide="ignore", invalid="ignore"):
        sim = (a @ b.T) / denom
    sim = np.where(denom > 0, sim, 0.0)
    np.clip(sim, -1.0, 1.0, out=sim)
    return 1.0 - sim
