"""Index memory model (paper Table 2).

Table 2 reports HNSW+PQ index sizes vs raw dataset sizes for six datasets
(ImageNet-1K through LAION-5B), with compression ratios of ~600x-9000x.
Those sizes follow from a simple accounting identity:

    index_bytes ≈ n * (pq_code_bytes + avg_degree * id_bytes + overhead)

This module exposes that accounting explicitly so the benchmark can
regenerate the table rows, and validates it against a real in-memory
:class:`~repro.ann.hnsw.HNSWIndex` built on small data.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["IndexStorageModel", "estimate_index_size_bytes", "DATASET_CATALOG"]


@dataclass(frozen=True)
class IndexStorageModel:
    """Per-element byte accounting for an HNSW+PQ index.

    Parameters mirror hnswlib defaults plus a PQ codec:

    * ``pq_code_bytes`` — bytes per PQ code (``m`` subquantizers, 8 bits each)
    * ``M`` — HNSW out-degree parameter; layer 0 stores up to ``2*M`` links
    * ``id_bytes`` — bytes per neighbor link (4 for uint32 ids)
    * ``level_overhead`` — expected extra links from upper layers; with
      ``mL = 1/ln(M)``, the expected number of layers per node is
      ``1/(1 - 1/M)`` ≈ 1 + 1/M, so upper layers add ~``M/ M`` links/node
    * ``metadata_bytes`` — per-element bookkeeping (level, offsets)
    """

    pq_code_bytes: int = 32
    M: int = 16
    id_bytes: int = 4
    metadata_bytes: int = 16

    def bytes_per_element(self) -> float:
        """Expected index bytes attributable to one element."""
        # Layer 0: up to 2*M links; upper layers: a geometric tail of nodes
        # (fraction ~1/M at each level) each adding up to M links.
        layer0 = 2 * self.M * self.id_bytes
        upper = (1.0 / (self.M - 1)) * self.M * self.id_bytes
        return self.pq_code_bytes + layer0 + upper + self.metadata_bytes

    def index_size_bytes(self, n_elements: int) -> float:
        """Total expected index size for ``n_elements``."""
        if n_elements < 0:
            raise ValueError("n_elements must be non-negative")
        return n_elements * self.bytes_per_element()

    def compression_ratio(self, n_elements: int, raw_bytes: float) -> float:
        """Raw-data-to-index size ratio (Table 2's rightmost column)."""
        idx = self.index_size_bytes(n_elements)
        if idx <= 0:
            raise ValueError("index size must be positive")
        return raw_bytes / idx


def estimate_index_size_bytes(
    n_elements: int, pq_code_bytes: int = 32, M: int = 16
) -> float:
    """Convenience wrapper around :class:`IndexStorageModel`."""
    return IndexStorageModel(pq_code_bytes=pq_code_bytes, M=M).index_size_bytes(
        n_elements
    )


# Paper Table 2 rows: (name, image count, raw size in bytes, reported index size).
_GB = 1024**3
_TB = 1024**4
_PB = 1024**5
DATASET_CATALOG = [
    ("ImageNet-1K", 1_200_000, 138 * _GB, 134 * 1024**2),
    ("Open Images (V6)", 9_000_000, 600 * _GB, 965 * 1024**2),
    ("ImageNet-21K", 14_000_000, 1.3 * _TB, 1.5 * _GB),
    ("YFCC100M", 100_000_000, 100 * _TB, 11.2 * _GB),
    ("LAION-400M", 400_000_000, 240 * _TB, 44.8 * _GB),
    ("LAION-5B", 5_000_000_000, 2.5 * _PB, 560 * _GB),
]
