"""Approximate-nearest-neighbor substrate.

SpiderCache's graph-based importance sampling (paper §4.1) relies on HNSW
for fast neighbor search over sample embeddings, with Product Quantization
to bound index memory (paper §5, Table 2). This package implements both from
scratch plus an exact brute-force oracle used for recall validation.
"""

from repro.ann.brute import BruteForceIndex
from repro.ann.distance import (
    cosine_distance_matrix,
    l2_distance_matrix,
    l2_distances,
    pairwise_l2,
)
from repro.ann.hnsw import HNSWIndex
from repro.ann.index_stats import IndexStorageModel, estimate_index_size_bytes
from repro.ann.pq import ProductQuantizer

__all__ = [
    "BruteForceIndex",
    "HNSWIndex",
    "ProductQuantizer",
    "IndexStorageModel",
    "estimate_index_size_bytes",
    "l2_distances",
    "l2_distance_matrix",
    "pairwise_l2",
    "cosine_distance_matrix",
]
