"""Product Quantization (PQ) codec.

Paper §5: "we adopt the HNSW algorithm in conjunction with quantization
(Product Quantization) to minimize storage" — the Table-2 compression ratios
(~1000x over raw images) come from storing PQ codes instead of float
embeddings. This module implements the standard Jégou et al. scheme: split
each vector into ``m`` subvectors, k-means-quantize each subspace to
``2**nbits`` centroids, store one code byte per subspace.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ann.distance import l2_distance_matrix
from repro.utils.rng import RngLike, resolve_rng

__all__ = ["ProductQuantizer"]


def _kmeans(
    data: np.ndarray,
    k: int,
    rng: np.random.Generator,
    iters: int = 20,
    init: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Plain Lloyd's k-means returning centroids of shape ``(k, d)``.

    k-means++ seeding (or explicit ``init`` centroids, used by tests to
    exercise degenerate starts); empty clusters are re-seeded from the
    farthest points, with distances recomputed against the *updated*
    centroids and each chosen seed marked used so two empty clusters can
    never re-seed from the same point.
    """
    n = data.shape[0]
    if n == 0:
        raise ValueError("cannot run k-means on empty data")
    k = min(k, n)
    if init is not None:
        centroids = np.array(init, dtype=np.float64)
        if centroids.shape != (k, data.shape[1]):
            raise ValueError("init centroids shape mismatch")
    else:
        # k-means++ initialization.
        centroids = np.empty((k, data.shape[1]))
        first = int(rng.integers(n))
        centroids[0] = data[first]
        closest_sq = np.sum((data - centroids[0]) ** 2, axis=1)
        for j in range(1, k):
            total = closest_sq.sum()
            if total <= 0:
                centroids[j:] = data[rng.integers(n, size=k - j)]
                break
            probs = closest_sq / total
            idx = int(rng.choice(n, p=probs))
            centroids[j] = data[idx]
            d = np.sum((data - centroids[j]) ** 2, axis=1)
            np.minimum(closest_sq, d, out=closest_sq)

    for _ in range(iters):
        d2 = l2_distance_matrix(data, centroids)
        assign = np.argmin(d2, axis=1)
        moved = False
        empty = []
        for j in range(k):
            members = data[assign == j]
            if len(members) == 0:
                empty.append(j)
                continue
            new_c = members.mean(axis=0)
            if not np.allclose(new_c, centroids[j]):
                centroids[j] = new_c
                moved = True
        if empty:
            # Re-seed each empty cluster from the point farthest from the
            # *updated* centroids. min_d2 is refreshed after every seed (and
            # the seed itself knocked out) so repeated empties spread out
            # instead of all landing on the same stale-farthest point.
            min_d2 = np.min(l2_distance_matrix(data, centroids), axis=1) ** 2
            for j in empty:
                far = int(np.argmax(min_d2))
                centroids[j] = data[far]
                d_new = np.sum((data - centroids[j]) ** 2, axis=1)
                np.minimum(min_d2, d_new, out=min_d2)
                min_d2[far] = -np.inf
                moved = True
        if not moved:
            break
    return centroids


class ProductQuantizer:
    """PQ codec: ``encode`` to uint8 codes, ``decode`` to approximations,
    and asymmetric-distance (ADC) search against encoded databases.

    Parameters
    ----------
    dim:
        Vector dimensionality; must be divisible by ``m``.
    m:
        Number of subspaces (bytes per code).
    nbits:
        Bits per subspace code; centroids per subspace = ``2**nbits`` (<= 8).
    """

    def __init__(self, dim: int, m: int = 8, nbits: int = 8) -> None:
        if dim % m != 0:
            raise ValueError(f"dim={dim} not divisible by m={m}")
        if not (1 <= nbits <= 8):
            raise ValueError("nbits must be in [1, 8]")
        self.dim = int(dim)
        self.m = int(m)
        self.nbits = int(nbits)
        self.ksub = 1 << nbits
        self.dsub = dim // m
        self.codebooks: Optional[np.ndarray] = None  # (m, ksub, dsub)

    @property
    def is_trained(self) -> bool:
        return self.codebooks is not None

    @property
    def code_size_bytes(self) -> int:
        """Bytes per encoded vector."""
        return self.m  # one uint8 per subspace (nbits <= 8)

    # ------------------------------------------------------------------
    def train(self, data: np.ndarray, rng: RngLike = None, iters: int = 20) -> None:
        """Learn per-subspace codebooks from training vectors."""
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        if data.shape[1] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {data.shape[1]}")
        gen = resolve_rng(rng)
        books = np.zeros((self.m, self.ksub, self.dsub))
        for j in range(self.m):
            sub = data[:, j * self.dsub : (j + 1) * self.dsub]
            cents = _kmeans(sub, self.ksub, gen, iters=iters)
            books[j, : cents.shape[0]] = cents
            if cents.shape[0] < self.ksub:
                # Fewer training points than centroids: repeat the last one so
                # every code decodes to something sensible.
                books[j, cents.shape[0] :] = cents[-1]
        self.codebooks = books

    def _require_trained(self) -> np.ndarray:
        if self.codebooks is None:
            raise RuntimeError("ProductQuantizer must be trained before use")
        return self.codebooks

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Quantize vectors to uint8 codes of shape ``(n, m)``."""
        books = self._require_trained()
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        if data.shape[1] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {data.shape[1]}")
        codes = np.empty((data.shape[0], self.m), dtype=np.uint8)
        for j in range(self.m):
            sub = data[:, j * self.dsub : (j + 1) * self.dsub]
            d2 = l2_distance_matrix(sub, books[j])
            codes[:, j] = np.argmin(d2, axis=1).astype(np.uint8)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct approximate vectors from codes."""
        books = self._require_trained()
        codes = np.atleast_2d(np.asarray(codes, dtype=np.uint8))
        if codes.shape[1] != self.m:
            raise ValueError(f"expected {self.m} code bytes, got {codes.shape[1]}")
        out = np.empty((codes.shape[0], self.dim))
        for j in range(self.m):
            out[:, j * self.dsub : (j + 1) * self.dsub] = books[j][codes[:, j]]
        return out

    def adc_table(self, query: np.ndarray) -> np.ndarray:
        """Per-query ``(m, ksub)`` table of squared subspace distances.

        Split out from :meth:`adc_distances` so a caller scoring many
        candidate batches against one query (e.g. an HNSW traversal in PQ
        mode) builds the table once and reuses it via :meth:`adc_lookup`.
        """
        books = self._require_trained()
        query = np.asarray(query, dtype=np.float64).ravel()
        if query.shape[0] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {query.shape[0]}")
        table = np.empty((self.m, self.ksub))
        for j in range(self.m):
            qsub = query[j * self.dsub : (j + 1) * self.dsub]
            diff = books[j] - qsub
            table[j] = np.einsum("ij,ij->i", diff, diff)
        return table

    def adc_lookup(
        self, table: np.ndarray, codes: np.ndarray, squared: bool = False
    ) -> np.ndarray:
        """Asymmetric distances from a precomputed :meth:`adc_table`.

        Sums table entries per code — the standard ADC trick that makes PQ
        search O(n·m) instead of O(n·dim). ``squared=True`` skips the final
        square root for callers that only compare distances (e.g. graph
        traversal, where squared L2 preserves the ordering).
        """
        codes = np.atleast_2d(np.asarray(codes, dtype=np.uint8))
        sq = table[np.arange(self.m)[None, :], codes].sum(axis=1)
        if squared:
            return sq
        np.maximum(sq, 0.0, out=sq)
        return np.sqrt(sq)

    def adc_distances(self, query: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Asymmetric distances (query vs encoded DB) via lookup tables."""
        return self.adc_lookup(self.adc_table(query), codes)

    def quantization_error(self, data: np.ndarray) -> float:
        """Mean L2 reconstruction error over ``data``."""
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        recon = self.decode(self.encode(data))
        return float(np.linalg.norm(data - recon, axis=1).mean())
