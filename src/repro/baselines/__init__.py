"""Published comparator policies: SHADE, iCache, CoorDL, LRU baseline."""

from repro.baselines.baseline import ClassicCachePolicy, LFUPolicy, LRUBaselinePolicy
from repro.baselines.coordl import CoorDLPolicy
from repro.baselines.gradnorm import GradNormISPolicy
from repro.baselines.icache import ICacheFullPolicy, ICacheImpPolicy
from repro.baselines.shade import ShadePolicy

__all__ = [
    "ClassicCachePolicy",
    "LRUBaselinePolicy",
    "LFUPolicy",
    "CoorDLPolicy",
    "ShadePolicy",
    "ICacheImpPolicy",
    "ICacheFullPolicy",
    "GradNormISPolicy",
]
