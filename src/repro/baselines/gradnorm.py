"""Gradient-norm importance sampling (Johnson & Guestrin, 2018).

The paper cites gradient-magnitude IS [21] alongside loss-based IS as the
computation-bound family its graph method replaces. For softmax
cross-entropy the per-sample logit-gradient norm is ``||p - y_onehot||_2``,
bounded below by ``1 - p_target = 1 - exp(-loss)`` — the standard cheap
proxy (Katharopoulos & Fleuret's "upper bound" trick evaluated from the
loss alone). Scores therefore live in [0, 1) and, like raw losses, shift
distribution as training progresses — globally incomparable, which is
exactly the Motivation-1 weakness.

Included as an additional comparator beyond the paper's four systems.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cache.base import CacheStats
from repro.core.importance_cache import ImportanceCache
from repro.core.sampler import MultinomialSampler
from repro.core.scores import GlobalScoreTable
from repro.core.semantic_cache import FetchOutcome, FetchSource
from repro.train.policy_base import PolicyContext, TrainingPolicy
from repro.utils.rng import RngLike

__all__ = ["GradNormISPolicy", "gradnorm_scores"]


def gradnorm_scores(losses: np.ndarray) -> np.ndarray:
    """Loss-derived gradient-norm proxy: ``1 - exp(-loss)`` in [0, 1)."""
    losses = np.asarray(losses, dtype=np.float64)
    if np.any(losses < 0):
        raise ValueError("losses must be non-negative")
    return 1.0 - np.exp(-losses)


class GradNormISPolicy(TrainingPolicy):
    """Gradient-norm IS + importance-score caching."""

    name = "gradnorm"

    def __init__(self, cache_fraction: float = 0.2, rng: RngLike = None) -> None:
        super().__init__(rng=rng)
        if not 0.0 <= cache_fraction <= 1.0:
            raise ValueError("cache_fraction must be in [0, 1]")
        self.cache_fraction = float(cache_fraction)
        self.score_table: Optional[GlobalScoreTable] = None
        self.cache: Optional[ImportanceCache] = None
        self.sampler: Optional[MultinomialSampler] = None

    def setup(self, ctx: PolicyContext) -> None:
        super().setup(ctx)
        n = ctx.num_samples
        self.score_table = GlobalScoreTable(n)
        self.cache = ImportanceCache(int(round(self.cache_fraction * n)))
        self.sampler = MultinomialSampler(
            n, weight_fn=self.score_table.sampling_weights, rng=self._rng
        )

    def epoch_order(self, epoch: int) -> np.ndarray:
        assert self.sampler is not None
        return self.sampler.epoch_order(epoch)

    def fetch(self, index: int) -> FetchOutcome:
        assert self.cache is not None and self.score_table is not None
        ctx = self._require_ctx()
        payload = self.cache.get(index)
        if payload is not None:
            return FetchOutcome(index, index, payload, FetchSource.IMPORTANCE)
        payload = ctx.store.get(index)
        self.cache.admit(index, payload, self.score_table.get(index))
        return FetchOutcome(index, index, payload, FetchSource.REMOTE)

    def after_batch(
        self,
        requested: np.ndarray,
        served: np.ndarray,
        losses: np.ndarray,
        embeddings: np.ndarray,
        epoch: int,
    ) -> None:
        assert self.score_table is not None and self.cache is not None
        served = np.asarray(served, dtype=np.int64)
        scores = gradnorm_scores(losses)
        _, last_pos = np.unique(served[::-1], return_index=True)
        pos = len(served) - 1 - last_pos
        self.score_table.update(served[pos], scores[pos], epoch=epoch)
        for i, s in zip(served[pos], scores[pos]):
            self.cache.update_score(int(i), float(s))

    def after_epoch(self, epoch: int, val_accuracy: float) -> None:
        assert self.score_table is not None
        self.score_table.snapshot_std()

    def stats(self) -> CacheStats:
        assert self.cache is not None
        return self.cache.stats

    @property
    def is_ms_per_batch(self) -> float:
        return 1.0
