"""iCache policies (Chen et al., HPCA '23).

iCache adopts the compute-bound loss-based IS of Jiang et al. 2019
("Accelerating deep learning by focusing on the biggest losers"): samples
whose loss is low get their *backprop skipped* (saving compute, costing some
accuracy), and raw losses double as sampling/caching scores.

Two cache variants match the paper's §6.3 split:

* :class:`ICacheImpPolicy` ("iCache-imp") — importance cache only, driven by
  the loss scores. Because raw losses are incomparable across epochs
  (Motivation 1), this hit ratio lands *below* SHADE's.
* :class:`ICacheFullPolicy` (full iCache) — adds the L-sample section with
  random replacement: samples below the H-threshold that miss the cache are
  served a *random cached L-sample instead* (a substitute hit). This pushes
  the hit ratio above SHADE's but "significantly degrades the model's final
  accuracy" (Fig. 6(b)) because the substitutes are arbitrary, not similar.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.cache.base import CacheStats
from repro.core.importance_cache import ImportanceCache
from repro.core.sampler import MultinomialSampler
from repro.core.scores import GlobalScoreTable
from repro.core.semantic_cache import FetchOutcome, FetchSource
from repro.train.policy_base import PolicyContext, TrainingPolicy
from repro.utils.rng import RngLike

__all__ = ["ICacheImpPolicy", "ICacheFullPolicy"]


class ICacheImpPolicy(TrainingPolicy):
    """Importance-cache-only iCache with compute-bound loss IS.

    ``skip_quantile`` is the fraction of lowest-loss samples per batch whose
    backprop is skipped (the compute-bound acceleration that costs accuracy).
    """

    name = "icache-imp"

    def __init__(
        self,
        cache_fraction: float = 0.2,
        skip_quantile: float = 0.3,
        uniform_mix: float = 0.7,
        rng: RngLike = None,
    ) -> None:
        super().__init__(rng=rng)
        if not 0.0 <= cache_fraction <= 1.0:
            raise ValueError("cache_fraction must be in [0, 1]")
        if not 0.0 <= skip_quantile < 1.0:
            raise ValueError("skip_quantile must be in [0, 1)")
        if not 0.0 <= uniform_mix <= 1.0:
            raise ValueError("uniform_mix must be in [0, 1]")
        self.cache_fraction = float(cache_fraction)
        self.skip_quantile = float(skip_quantile)
        # Compute-bound IS still forward-passes (hence fetches) nearly every
        # sample — its savings come from skipping backprop, not I/O. The
        # sampler therefore stays mostly uniform, with only a mild loss bias:
        # p = uniform_mix * uniform + (1 - uniform_mix) * loss-weighted.
        # This is why iCache-imp's hit ratio lands below SHADE's (paper §6.3).
        self.uniform_mix = float(uniform_mix)
        self.score_table: Optional[GlobalScoreTable] = None
        self.cache: Optional[ImportanceCache] = None
        self.sampler: Optional[MultinomialSampler] = None

    def _mixed_weights(self) -> np.ndarray:
        assert self.score_table is not None
        w = self.score_table.sampling_weights()
        n = w.shape[0]
        return self.uniform_mix / n + (1.0 - self.uniform_mix) * w

    def setup(self, ctx: PolicyContext) -> None:
        super().setup(ctx)
        n = ctx.num_samples
        self.score_table = GlobalScoreTable(n)
        self.cache = ImportanceCache(int(round(self.cache_fraction * n)))
        self.sampler = MultinomialSampler(
            n, weight_fn=self._mixed_weights, rng=self._rng
        )

    def epoch_order(self, epoch: int) -> np.ndarray:
        assert self.sampler is not None
        return self.sampler.epoch_order(epoch)

    def fetch(self, index: int) -> FetchOutcome:
        assert self.cache is not None and self.score_table is not None
        ctx = self._require_ctx()
        payload = self.cache.get(index)
        if payload is not None:
            return FetchOutcome(index, index, payload, FetchSource.IMPORTANCE)
        payload = ctx.store.get(index)
        self.cache.admit(index, payload, self.score_table.get(index))
        return FetchOutcome(index, index, payload, FetchSource.REMOTE)

    def backprop_mask(
        self, indices: np.ndarray, losses: np.ndarray
    ) -> Optional[np.ndarray]:
        """Skip backprop for the lowest-loss ``skip_quantile`` of the batch."""
        if self.skip_quantile == 0.0:
            return None
        losses = np.asarray(losses, dtype=np.float64)
        threshold = np.quantile(losses, self.skip_quantile)
        return (losses > threshold).astype(np.float64)

    def after_batch(
        self,
        requested: np.ndarray,
        served: np.ndarray,
        losses: np.ndarray,
        embeddings: np.ndarray,
        epoch: int,
    ) -> None:
        assert self.score_table is not None and self.cache is not None
        served = np.asarray(served, dtype=np.int64)
        # Raw losses as scores — the compute-bound IS choice the paper
        # criticizes: scales shift epoch to epoch as the model learns.
        scores = np.asarray(losses, dtype=np.float64)
        _, last_pos = np.unique(served[::-1], return_index=True)
        pos = len(served) - 1 - last_pos
        self.score_table.update(served[pos], scores[pos], epoch=epoch)
        for i, s in zip(served[pos], scores[pos]):
            self.cache.update_score(int(i), float(s))

    def after_epoch(self, epoch: int, val_accuracy: float) -> None:
        assert self.score_table is not None
        self.score_table.snapshot_std()

    def stats(self) -> CacheStats:
        assert self.cache is not None
        return self.cache.stats

    @property
    def is_ms_per_batch(self) -> float:
        return 1.0


class ICacheFullPolicy(ICacheImpPolicy):
    """Full iCache: H/L sample split with random L-replacement.

    ``h_fraction`` of the cache budget holds H-samples (importance cache);
    the rest is the L-section. An L-sample request that misses is served a
    random resident L-sample with probability ``substitute_prob``.
    """

    name = "icache"

    def __init__(
        self,
        cache_fraction: float = 0.2,
        skip_quantile: float = 0.3,
        h_fraction: float = 0.7,
        substitute_prob: float = 0.3,
        uniform_mix: float = 0.7,
        rng: RngLike = None,
    ) -> None:
        super().__init__(cache_fraction, skip_quantile, uniform_mix, rng=rng)
        if not 0.0 <= h_fraction <= 1.0:
            raise ValueError("h_fraction must be in [0, 1]")
        if not 0.0 <= substitute_prob <= 1.0:
            raise ValueError("substitute_prob must be in [0, 1]")
        self.h_fraction = float(h_fraction)
        self.substitute_prob = float(substitute_prob)
        self._l_keys: List[int] = []
        self._l_values: Dict[int, np.ndarray] = {}
        self._l_capacity = 0
        self._l_stats = CacheStats()

    def setup(self, ctx: PolicyContext) -> None:
        TrainingPolicy.setup(self, ctx)
        n = ctx.num_samples
        total = int(round(self.cache_fraction * n))
        h_cap = int(round(total * self.h_fraction))
        self._l_capacity = total - h_cap
        self.score_table = GlobalScoreTable(n)
        self.cache = ImportanceCache(h_cap)
        self.sampler = MultinomialSampler(
            n, weight_fn=self._mixed_weights, rng=self._rng
        )

    def _h_threshold(self) -> float:
        """Score above which a sample counts as an H-sample: the importance
        cache's own admission bar (its current minimum)."""
        assert self.cache is not None
        m = self.cache.min_score()
        return m if m is not None else 0.0

    def _l_put(self, index: int, payload: np.ndarray) -> None:
        if self._l_capacity == 0 or index in self._l_values:
            return
        if len(self._l_keys) >= self._l_capacity:
            # Random replacement: evict a uniformly random resident.
            victim_pos = int(self._rng.integers(len(self._l_keys)))
            victim = self._l_keys[victim_pos]
            self._l_keys[victim_pos] = index
            del self._l_values[victim]
            self._l_stats.evictions += 1
        else:
            self._l_keys.append(index)
        self._l_values[index] = payload
        self._l_stats.insertions += 1

    def fetch(self, index: int) -> FetchOutcome:
        assert self.cache is not None and self.score_table is not None
        ctx = self._require_ctx()
        payload = self.cache.get(index)
        if payload is not None:
            return FetchOutcome(index, index, payload, FetchSource.IMPORTANCE)
        # L-section exact hit.
        payload = self._l_values.get(index)
        if payload is not None:
            self._l_stats.hits += 1
            return FetchOutcome(index, index, payload, FetchSource.HOMOPHILY)
        # L-section random substitution.
        if (
            self._l_keys
            and self.score_table.get(index) <= self._h_threshold()
            and self._rng.random() < self.substitute_prob
        ):
            sub = self._l_keys[int(self._rng.integers(len(self._l_keys)))]
            self._l_stats.substitute_hits += 1
            return FetchOutcome(index, sub, self._l_values[sub], FetchSource.HOMOPHILY)
        self._l_stats.misses += 1
        payload = ctx.store.get(index)
        score = self.score_table.get(index)
        if not self.cache.admit(index, payload, score):
            self._l_put(index, payload)
        return FetchOutcome(index, index, payload, FetchSource.REMOTE)

    def stats(self) -> CacheStats:
        assert self.cache is not None
        agg = CacheStats()
        agg.merge(self.cache.stats)
        agg.merge(self._l_stats)
        # ImportanceCache.get counts a miss for every probe that falls
        # through to the L-section; those requests are re-counted there.
        agg.misses -= self._l_stats.requests
        return agg
