"""SHADE policy (Khan et al., FAST '23).

Loss-based importance sampling + importance-score caching. SHADE "ranks
samples within each mini-batch using categorical cross-entropy, assigning a
rank to each" (paper §7): a sample's score is its *loss rank within its own
mini-batch*, normalized to [0, 1]. That is exactly the weakness SpiderCache
targets — rank-within-batch scores are comparable inside one batch but not
across batches or epochs (Motivation 1), so the importance cache churns on
noisy rankings.

Cache: importance-only (min-heap admission like SpiderCache's Importance
Cache, but driven by the rank scores). Sampling: multinomial over the
global table of latest rank scores.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cache.base import CacheStats
from repro.core.importance_cache import ImportanceCache
from repro.core.sampler import MultinomialSampler
from repro.core.scores import GlobalScoreTable
from repro.core.semantic_cache import FetchOutcome, FetchSource
from repro.train.policy_base import PolicyContext, TrainingPolicy
from repro.utils.rng import RngLike

__all__ = ["ShadePolicy", "loss_rank_scores"]


def loss_rank_scores(losses: np.ndarray, eps: float = 0.05) -> np.ndarray:
    """Within-batch rank scores in ``[eps, 1]``.

    Highest loss -> 1.0, lowest -> ``eps`` (floored so low-rank samples keep
    nonzero sampling probability). Ties share ranks by stable ordering.
    """
    losses = np.asarray(losses, dtype=np.float64).ravel()
    n = losses.shape[0]
    if n == 0:
        return np.empty(0)
    if n == 1:
        return np.ones(1)
    order = np.argsort(np.argsort(losses, kind="stable"), kind="stable")
    return eps + (1.0 - eps) * order / (n - 1)


class ShadePolicy(TrainingPolicy):
    """Loss-rank IS + importance-only caching (SHADE)."""

    name = "shade"

    def __init__(self, cache_fraction: float = 0.2, rng: RngLike = None) -> None:
        super().__init__(rng=rng)
        if not 0.0 <= cache_fraction <= 1.0:
            raise ValueError("cache_fraction must be in [0, 1]")
        self.cache_fraction = float(cache_fraction)
        self.score_table: Optional[GlobalScoreTable] = None
        self.cache: Optional[ImportanceCache] = None
        self.sampler: Optional[MultinomialSampler] = None

    def setup(self, ctx: PolicyContext) -> None:
        super().setup(ctx)
        n = ctx.num_samples
        self.score_table = GlobalScoreTable(n)
        self.cache = ImportanceCache(int(round(self.cache_fraction * n)))
        self.sampler = MultinomialSampler(
            n, weight_fn=self.score_table.sampling_weights, rng=self._rng
        )

    def epoch_order(self, epoch: int) -> np.ndarray:
        assert self.sampler is not None
        return self.sampler.epoch_order(epoch)

    def fetch(self, index: int) -> FetchOutcome:
        assert self.cache is not None and self.score_table is not None
        ctx = self._require_ctx()
        payload = self.cache.get(index)
        if payload is not None:
            return FetchOutcome(index, index, payload, FetchSource.IMPORTANCE)
        payload = ctx.store.get(index)
        self.cache.admit(index, payload, self.score_table.get(index))
        return FetchOutcome(index, index, payload, FetchSource.REMOTE)

    def after_batch(
        self,
        requested: np.ndarray,
        served: np.ndarray,
        losses: np.ndarray,
        embeddings: np.ndarray,
        epoch: int,
    ) -> None:
        assert self.score_table is not None and self.cache is not None
        served = np.asarray(served, dtype=np.int64)
        scores = loss_rank_scores(losses)
        # Deduplicate repeated ids (with-replacement sampling), keeping the
        # last occurrence's score.
        _, last_pos = np.unique(served[::-1], return_index=True)
        pos = len(served) - 1 - last_pos
        self.score_table.update(served[pos], scores[pos], epoch=epoch)
        for i, s in zip(served[pos], scores[pos]):
            self.cache.update_score(int(i), float(s))

    def after_epoch(self, epoch: int, val_accuracy: float) -> None:
        assert self.score_table is not None
        self.score_table.snapshot_std()

    def stats(self) -> CacheStats:
        assert self.cache is not None
        return self.cache.stats

    @property
    def is_ms_per_batch(self) -> float:
        # Loss ranking is a sort over the batch — negligible next to the
        # graph-based IS cost; charge a nominal 1 ms.
        return 1.0
