"""CoorDL policy (Mohan et al., 2020).

Random sampling plus the MinIO static cache: the cache fills during the
first epoch and never changes afterwards, yielding a hit ratio equal to the
cache fraction in steady state — the best any policy can do under pure
random sampling, and the floor every IS-aware policy must beat.
"""

from __future__ import annotations

from repro.baselines.baseline import ClassicCachePolicy
from repro.cache.minio import MinIOCache
from repro.utils.rng import RngLike

__all__ = ["CoorDLPolicy"]


class CoorDLPolicy(ClassicCachePolicy):
    """Random sampling + MinIO static cache (CoorDL)."""

    name = "coordl"

    def __init__(self, cache_fraction: float = 0.2, rng: RngLike = None) -> None:
        super().__init__(MinIOCache, cache_fraction, name="coordl", rng=rng)
