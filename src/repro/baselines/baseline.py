"""Classic-cache baselines: random sampling over LRU/LFU/FIFO.

The paper's end-to-end "Baseline" is exactly random sampling + LRU; Fig. 3(b)
additionally sweeps LFU. Random sampling visits every sample once per epoch
in fresh random order, which destroys the reuse locality these policies need
— the effect the whole paper is built on.
"""

from __future__ import annotations

from typing import Callable, Type

import numpy as np

from repro.cache.base import Cache, CacheStats
from repro.cache.lfu import LFUCache
from repro.cache.lru import LRUCache
from repro.core.semantic_cache import FetchOutcome, FetchSource
from repro.train.policy_base import PolicyContext, TrainingPolicy
from repro.utils.rng import RngLike

__all__ = ["ClassicCachePolicy", "LRUBaselinePolicy", "LFUPolicy"]


class ClassicCachePolicy(TrainingPolicy):
    """Random sampling + a pluggable classic cache (demand-fill on miss)."""

    def __init__(
        self,
        cache_cls: Type[Cache],
        cache_fraction: float = 0.2,
        name: str | None = None,
        rng: RngLike = None,
    ) -> None:
        super().__init__(rng=rng)
        if not 0.0 <= cache_fraction <= 1.0:
            raise ValueError("cache_fraction must be in [0, 1]")
        self.cache_cls = cache_cls
        self.cache_fraction = float(cache_fraction)
        if name is not None:
            self.name = name
        else:
            self.name = f"{cache_cls.__name__.replace('Cache', '').lower()}-baseline"
        self.cache: Cache | None = None

    def setup(self, ctx: PolicyContext) -> None:
        """Build the cache sized to ``cache_fraction`` of the dataset."""
        super().setup(ctx)
        capacity = int(round(self.cache_fraction * ctx.num_samples))
        self.cache = self.cache_cls(capacity)

    def fetch(self, index: int) -> FetchOutcome:
        """Serve from the cache, demand-filling from storage on miss."""
        assert self.cache is not None
        ctx = self._require_ctx()
        payload = self.cache.get(index)
        if payload is not None:
            return FetchOutcome(index, index, payload, FetchSource.IMPORTANCE)
        payload = ctx.store.get(index)
        self.cache.put(index, payload)
        return FetchOutcome(index, index, payload, FetchSource.REMOTE)

    def stats(self) -> CacheStats:
        """The underlying cache's counters."""
        assert self.cache is not None
        return self.cache.stats


class LRUBaselinePolicy(ClassicCachePolicy):
    """The paper's Baseline: LRU eviction + random sampling."""

    def __init__(self, cache_fraction: float = 0.2, rng: RngLike = None) -> None:
        super().__init__(LRUCache, cache_fraction, name="baseline-lru", rng=rng)


class LFUPolicy(ClassicCachePolicy):
    """LFU eviction + random sampling (Fig. 3(b))."""

    def __init__(self, cache_fraction: float = 0.2, rng: RngLike = None) -> None:
        super().__init__(LFUCache, cache_fraction, name="lfu", rng=rng)
