"""Indexed binary min-heap with O(log n) priority updates.

The Importance Cache (paper §4.2) is "a min-heap [that] manages the cache,
evicting the least important samples when full". Cache admission needs three
operations the stdlib ``heapq`` cannot provide directly:

* membership test by key (is sample ``i`` cached?),
* peek at the minimum priority (compare an incoming sample's score against
  the least-important resident),
* in-place priority update (global importance scores change across epochs).

This heap keeps a ``key -> slot`` position map alongside the array so all
three are O(1)/O(log n).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["IndexedMinHeap"]


class IndexedMinHeap:
    """Binary min-heap over ``(priority, key)`` pairs with keyed access.

    Keys must be hashable and unique. Ties on priority are broken by
    insertion order (via a monotonic counter) so behaviour is deterministic.
    """

    __slots__ = ("_heap", "_pos", "_counter")

    def __init__(self) -> None:
        # Each entry is [priority, tiebreak, key].
        self._heap: List[List[Any]] = []
        self._pos: Dict[Any, int] = {}
        self._counter = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._heap)

    def __contains__(self, key: Any) -> bool:
        return key in self._pos

    def __iter__(self) -> Iterator[Any]:
        """Iterate over keys in arbitrary (heap) order."""
        for entry in self._heap:
            yield entry[2]

    def priority(self, key: Any) -> float:
        """Return the current priority of ``key``.

        Raises ``KeyError`` if absent.
        """
        return self._heap[self._pos[key]][0]

    def peek(self) -> Tuple[float, Any]:
        """Return ``(priority, key)`` of the minimum without removing it."""
        if not self._heap:
            raise IndexError("peek from empty heap")
        entry = self._heap[0]
        return entry[0], entry[2]

    def peek_entry(self) -> Tuple[float, int, Any]:
        """Return ``(priority, tiebreak, key)`` of the minimum.

        Exposing the tiebreak lets a coordinator compare minima *across*
        heaps (the sharded cache service elects a global victim among
        per-shard minima) with exactly the ordering :meth:`pop` uses.
        """
        if not self._heap:
            raise IndexError("peek from empty heap")
        entry = self._heap[0]
        return entry[0], entry[1], entry[2]

    def min_priority(self) -> float:
        """Priority of the minimum element."""
        return self.peek()[0]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def push(self, key: Any, priority: float, tiebreak: Optional[int] = None) -> None:
        """Insert ``key`` with ``priority``; raises if key already present.

        ``tiebreak`` overrides the internal insertion counter. Heaps that
        are partitions of one logical heap (the sharded cache service)
        pass a globally assigned counter so equal-priority eviction order
        matches the monolithic heap's bit for bit; the internal counter is
        bumped past it so later local pushes never collide.
        """
        if key in self._pos:
            raise KeyError(f"duplicate heap key: {key!r}")
        if tiebreak is None:
            tiebreak = self._counter
            self._counter += 1
        else:
            tiebreak = int(tiebreak)
            self._counter = max(self._counter, tiebreak + 1)
        entry = [priority, tiebreak, key]
        self._heap.append(entry)
        self._pos[key] = len(self._heap) - 1
        self._sift_up(len(self._heap) - 1)

    def pop(self) -> Tuple[float, Any]:
        """Remove and return ``(priority, key)`` of the minimum element."""
        if not self._heap:
            raise IndexError("pop from empty heap")
        top = self._heap[0]
        last = self._heap.pop()
        del self._pos[top[2]]
        if self._heap:
            self._heap[0] = last
            self._pos[last[2]] = 0
            self._sift_down(0)
        return top[0], top[2]

    def remove(self, key: Any) -> float:
        """Remove ``key`` and return its priority. KeyError if absent."""
        slot = self._pos.pop(key)
        entry = self._heap[slot]
        last = self._heap.pop()
        if slot < len(self._heap):
            self._heap[slot] = last
            self._pos[last[2]] = slot
            # The replacement may need to move either direction.
            self._sift_down(slot)
            self._sift_up(slot)
        return entry[0]

    def update(self, key: Any, priority: float) -> None:
        """Change the priority of an existing key (KeyError if absent)."""
        slot = self._pos[key]
        old = self._heap[slot][0]
        self._heap[slot][0] = priority
        if priority < old:
            self._sift_up(slot)
        elif priority > old:
            self._sift_down(slot)

    def push_or_update(self, key: Any, priority: float) -> None:
        """Insert ``key`` or update its priority if already present."""
        if key in self._pos:
            self.update(key, priority)
        else:
            self.push(key, priority)

    def get(self, key: Any, default: Optional[float] = None) -> Optional[float]:
        """Priority of ``key``, or ``default`` if absent."""
        slot = self._pos.get(key)
        if slot is None:
            return default
        return self._heap[slot][0]

    def clear(self) -> None:
        """Remove every entry."""
        self._heap.clear()
        self._pos.clear()

    def keys(self) -> List[Any]:
        """Snapshot of all keys (arbitrary order)."""
        return [e[2] for e in self._heap]

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Exact snapshot: heap-array order, tie-break counters and all.

        Restoring this (rather than re-pushing keys) preserves tie-breaking
        behaviour, so eviction order after a restore is bit-identical to a
        never-interrupted run.
        """
        return {
            "entries": [[e[0], e[1], e[2]] for e in self._heap],
            "counter": self._counter,
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Replace contents with a :meth:`state_dict` snapshot."""
        self._heap = [[float(p), int(t), int(k)] for p, t, k in state["entries"]]
        self._pos = {e[2]: i for i, e in enumerate(self._heap)}
        self._counter = int(state["counter"])

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _less(self, a: int, b: int) -> bool:
        ea, eb = self._heap[a], self._heap[b]
        return (ea[0], ea[1]) < (eb[0], eb[1])

    def _swap(self, a: int, b: int) -> None:
        heap, pos = self._heap, self._pos
        heap[a], heap[b] = heap[b], heap[a]
        pos[heap[a][2]] = a
        pos[heap[b][2]] = b

    def _sift_up(self, slot: int) -> None:
        while slot > 0:
            parent = (slot - 1) >> 1
            if self._less(slot, parent):
                self._swap(slot, parent)
                slot = parent
            else:
                break

    def _sift_down(self, slot: int) -> None:
        n = len(self._heap)
        while True:
            left = 2 * slot + 1
            right = left + 1
            smallest = slot
            if left < n and self._less(left, smallest):
                smallest = left
            if right < n and self._less(right, smallest):
                smallest = right
            if smallest == slot:
                break
            self._swap(slot, smallest)
            slot = smallest

    def check_invariants(self) -> None:
        """Assert heap-order and position-map consistency (for tests)."""
        n = len(self._heap)
        assert len(self._pos) == n
        for i in range(n):
            entry = self._heap[i]
            assert self._pos[entry[2]] == i
            left, right = 2 * i + 1, 2 * i + 2
            if left < n:
                assert (self._heap[i][0], self._heap[i][1]) <= (
                    self._heap[left][0],
                    self._heap[left][1],
                )
            if right < n:
                assert (self._heap[i][0], self._heap[i][1]) <= (
                    self._heap[right][0],
                    self._heap[right][1],
                )
