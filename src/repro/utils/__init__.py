"""Shared low-level utilities: indexed heap, RNG plumbing."""

from repro.utils.heap import IndexedMinHeap
from repro.utils.rng import resolve_rng, spawn_rngs

__all__ = ["IndexedMinHeap", "resolve_rng", "spawn_rngs"]
