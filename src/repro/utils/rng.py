"""Seeded RNG plumbing.

Every stochastic component (samplers, dataset generators, HNSW level draws,
latency models) accepts either a seed, an existing ``numpy.random.Generator``,
or ``None``. Centralizing the coercion keeps experiments reproducible: a
single integer seed at the top of a benchmark deterministically derives every
downstream stream via ``spawn_rngs``.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

__all__ = ["resolve_rng", "spawn_rngs", "RngLike"]

RngLike = Union[None, int, np.random.Generator]


def resolve_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a ``numpy.random.Generator``.

    ``None`` yields a fresh nondeterministic generator; an int seeds one;
    a Generator passes through unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot make an RNG from {type(rng).__name__}")


def spawn_rngs(rng: RngLike, n: int) -> List[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Uses ``Generator.spawn`` so the children's streams are statistically
    independent regardless of how much the parent has been consumed.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    parent = resolve_rng(rng)
    return list(parent.spawn(n))
