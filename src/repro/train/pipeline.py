"""Three-stage pipeline model (paper §5, Table 1, Fig. 12).

The paper splits each mini-batch into Stage1 (data loading + forward),
Stage2 (backward + optimizer), and IS (graph-based importance computation).
IS depends on Stage1's embeddings, so it can overlap Stage2
(Fig. 12(a)) and, for long-IS models like AlexNet/VGG16, also the *next*
batch's Stage1 (Fig. 12(b)). ``PipelineSimulator`` schedules N batches under
either mode and reports the visible IS overhead — which the paper's
measurements show is fully hidden.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Literal, Tuple

from repro.nn.models import MODEL_ZOO, ModelSpec

__all__ = ["StageCostModel", "PipelineSimulator", "ScheduledInterval"]

OverlapMode = Literal["none", "stage2", "stage2+next_stage1"]


@dataclass(frozen=True)
class StageCostModel:
    """Per-mini-batch stage costs in milliseconds (Table 1 rows)."""

    stage1_ms: float
    stage2_ms: float
    is_ms: float

    @classmethod
    def from_spec(cls, spec: ModelSpec) -> "StageCostModel":
        return cls(spec.stage1_ms, spec.stage2_ms, spec.is_ms)

    @classmethod
    def for_model(cls, name: str) -> "StageCostModel":
        return cls.from_spec(MODEL_ZOO[name])

    @property
    def serial_ms(self) -> float:
        """Per-batch time with no overlap at all."""
        return self.stage1_ms + self.stage2_ms + self.is_ms

    def recommended_mode(self) -> OverlapMode:
        """Paper's rule: overlap Stage2 only when IS fits inside it;
        otherwise extend into the next batch's Stage1 (Fig. 12(b))."""
        if self.is_ms <= self.stage2_ms:
            return "stage2"
        return "stage2+next_stage1"

    def visible_is_ms(self, mode: OverlapMode) -> float:
        """IS milliseconds *not* hidden by the overlap window, per batch."""
        if mode == "none":
            return self.is_ms
        window = self.stage2_ms
        if mode == "stage2+next_stage1":
            window += self.stage1_ms
        return max(0.0, self.is_ms - window)


@dataclass
class ScheduledInterval:
    """One stage execution in the schedule (for Fig.-12-style Gantt data)."""

    batch: int
    stage: str  # "stage1" | "stage2" | "is"
    start_ms: float
    end_ms: float

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


class PipelineSimulator:
    """Event-driven schedule of N batches under an overlap mode.

    Stage1(b) -> Stage2(b) run back to back on the main stream; IS(b) runs
    on a side stream starting when Stage1(b) finishes. The *next* batch's
    Stage1 may start once Stage2(b) is done, but must additionally wait for
    IS(b) when the mode forbids overlapping it (mode "stage2": IS must end
    before Stage1(b+1) begins; mode "none": fully serial).
    """

    def __init__(self, costs: StageCostModel, mode: OverlapMode = "stage2") -> None:
        self.costs = costs
        self.mode = mode

    def schedule(self, n_batches: int) -> List[ScheduledInterval]:
        """Event-driven schedule of ``n_batches`` under the overlap mode."""
        if n_batches <= 0:
            raise ValueError("n_batches must be positive")
        c = self.costs
        out: List[ScheduledInterval] = []
        t = 0.0  # main-stream cursor
        prev_is_end = 0.0
        for b in range(n_batches):
            if self.mode == "none":
                s1_start = max(t, prev_is_end)
            elif self.mode == "stage2":
                # IS(b-1) may not overlap this Stage1.
                s1_start = max(t, prev_is_end)
            else:  # stage2+next_stage1: IS may run under this Stage1.
                s1_start = t
            s1_end = s1_start + c.stage1_ms
            out.append(ScheduledInterval(b, "stage1", s1_start, s1_end))

            if self.mode == "none":
                is_start = s1_end + c.stage2_ms  # serial: after stage2
            else:
                is_start = s1_end
            is_end = is_start + c.is_ms

            s2_start = s1_end
            s2_end = s2_start + c.stage2_ms
            out.append(ScheduledInterval(b, "stage2", s2_start, s2_end))
            out.append(ScheduledInterval(b, "is", is_start, is_end))

            t = s2_end
            if self.mode == "stage2+next_stage1":
                prev_is_end = 0.0  # never blocks
                t = max(t, is_end - c.stage1_ms)  # IS must end by next s1's end
            elif self.mode == "stage2":
                prev_is_end = is_end
            else:
                prev_is_end = is_end
        return out

    def makespan_ms(self, n_batches: int) -> float:
        """End time of the last interval in the schedule."""
        sched = self.schedule(n_batches)
        return max(iv.end_ms for iv in sched)

    def visible_overhead_ms(self, n_batches: int) -> float:
        """Extra time vs running Stage1+Stage2 alone (no IS)."""
        base = n_batches * (self.costs.stage1_ms + self.costs.stage2_ms)
        return self.makespan_ms(n_batches) - base

    def per_batch_visible_ms(self, n_batches: int = 64) -> float:
        """Amortized visible IS cost per batch."""
        return self.visible_overhead_ms(n_batches) / n_batches

    def stage_table(self) -> Dict[str, float]:
        """Table-1-style row for this cost model."""
        return {
            "stage1_ms": self.costs.stage1_ms,
            "stage2_ms": self.costs.stage2_ms,
            "is_ms": self.costs.is_ms,
            "mode": self.mode,
            "visible_is_ms": self.costs.visible_is_ms(self.mode),
        }
