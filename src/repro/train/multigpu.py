"""Data-parallel multi-GPU time simulation (paper §6.6, Fig. 17).

Models K-way synchronous data parallelism over the measured single-worker
stage times of a finished run:

* compute splits K ways (each GPU handles batch/K samples);
* data loading splits K ways too (each worker's loader fetches its shard),
  but the epoch's I/O stall is the *max* over workers — modeled with a
  straggler factor that grows mildly with K (random shard imbalance);
* gradient all-reduce adds a per-step communication cost that *increases*
  with K (ring all-reduce latency + per-step sync), which is why the paper
  notes "there remains significant potential ... primarily due to added
  overheads such as communication costs".

SpiderCache's advantage grows with K because compute shrinks 1/K while the
uncached baseline's I/O stall shrinks more slowly — exactly the Fig. 17
shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.train.metrics import TrainResult

__all__ = ["MultiGPUSimulator", "MultiGPUEpoch"]


@dataclass
class MultiGPUEpoch:
    """Per-epoch time decomposition for one GPU count."""

    gpus: int
    data_load_s: float
    compute_s: float
    comm_s: float

    @property
    def epoch_time_s(self) -> float:
        return self.data_load_s + self.compute_s + self.comm_s


class MultiGPUSimulator:
    """Scales a single-GPU run's per-epoch stage times to K GPUs.

    Parameters
    ----------
    comm_ms_per_step:
        Base all-reduce cost per optimization step at K=2, scaled by the
        ring-all-reduce factor ``2*(K-1)/K``.
    straggler_alpha:
        I/O straggler inflation: the slowest of K loaders finishes
        ``1 + straggler_alpha*(K-1)/K`` later than the mean shard.
    steps_per_epoch:
        Optimization steps per epoch (for the communication term).
    """

    def __init__(
        self,
        comm_ms_per_step: float = 8.0,
        straggler_alpha: float = 0.15,
        steps_per_epoch: int = 32,
    ) -> None:
        if comm_ms_per_step < 0 or straggler_alpha < 0:
            raise ValueError("costs must be non-negative")
        if steps_per_epoch <= 0:
            raise ValueError("steps_per_epoch must be positive")
        self.comm_ms_per_step = comm_ms_per_step
        self.straggler_alpha = straggler_alpha
        self.steps_per_epoch = steps_per_epoch

    def scale_epoch(
        self, data_load_s: float, compute_s: float, gpus: int
    ) -> MultiGPUEpoch:
        """Scale one epoch's single-GPU stage times to ``gpus`` workers."""
        if gpus < 1:
            raise ValueError("gpus must be >= 1")
        k = gpus
        straggle = 1.0 + self.straggler_alpha * (k - 1) / k
        load = data_load_s / k * straggle
        compute = compute_s / k
        comm = 0.0
        if k > 1:
            comm = self.steps_per_epoch * self.comm_ms_per_step / 1e3 * 2 * (k - 1) / k
        return MultiGPUEpoch(k, load, compute, comm)

    def per_epoch_times(
        self, result: TrainResult, gpu_counts: List[int]
    ) -> Dict[int, float]:
        """Mean per-epoch time for each GPU count, from a finished run."""
        loads = result.series("data_load_s")
        computes = result.series("compute_s")
        out: Dict[int, float] = {}
        for k in gpu_counts:
            times = [
                self.scale_epoch(float(l), float(c), k).epoch_time_s
                for l, c in zip(loads, computes)
            ]
            out[k] = float(np.mean(times))
        return out
