"""Training loop, policies, timing pipeline, multi-GPU simulation."""

from repro.train.data_parallel import DataParallelTrainer, WorkerState
from repro.train.metrics import EpochMetrics, TrainResult
from repro.train.multigpu import MultiGPUSimulator
from repro.train.pipeline import PipelineSimulator, StageCostModel
from repro.train.policy_base import PolicyContext, TrainingPolicy
from repro.train.trainer import Trainer, TrainerConfig

__all__ = [
    "TrainingPolicy",
    "PolicyContext",
    "Trainer",
    "TrainerConfig",
    "DataParallelTrainer",
    "WorkerState",
    "EpochMetrics",
    "TrainResult",
    "StageCostModel",
    "PipelineSimulator",
    "MultiGPUSimulator",
]
