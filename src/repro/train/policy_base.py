"""Training-policy protocol.

A *policy* bundles everything that varies between SpiderCache and the
baselines: the epoch sampling order (importance vs random), the cache
hierarchy a fetch traverses, any backprop selectivity (iCache's
compute-bound IS), and per-batch/per-epoch bookkeeping. The
:class:`~repro.train.trainer.Trainer` drives models through a policy without
knowing which one it is — mirroring how the paper implements every method as
a PyTorch DataLoader/Sampler swap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cache.base import CacheStats
from repro.core.semantic_cache import FetchOutcome, FetchSource
from repro.data.synthetic import SyntheticDataset
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.storage.backends import RemoteStore
from repro.utils.rng import RngLike, resolve_rng

__all__ = ["PolicyContext", "TrainingPolicy"]


@dataclass
class PolicyContext:
    """Everything a policy needs at setup time."""

    dataset: SyntheticDataset
    store: RemoteStore
    batch_size: int
    total_epochs: int
    embedding_dim: int
    rng: np.random.Generator

    @property
    def num_samples(self) -> int:
        return len(self.dataset)


class TrainingPolicy:
    """Base policy: random sampling, no cache (every fetch goes remote)."""

    name = "no-cache"

    def __init__(self, rng: RngLike = None) -> None:
        self._rng = resolve_rng(rng)
        self.ctx: Optional[PolicyContext] = None
        self._obs = NULL_OBSERVER

    # ------------------------------------------------------------------
    def setup(self, ctx: PolicyContext) -> None:
        """Bind the policy to a dataset/store; called once by the trainer."""
        self.ctx = ctx

    def attach_observer(self, observer: Observer) -> None:
        """Wire the run observer into the policy (call after ``setup``).

        The base policy only keeps the reference; subclasses with caches
        or managers cascade it. Observer wiring is runtime-only — never
        checkpointed.
        """
        self._obs = observer

    def _require_ctx(self) -> PolicyContext:
        if self.ctx is None:
            raise RuntimeError(f"policy {self.name!r} used before setup()")
        return self.ctx

    # ------------------------------------------------------------------
    def before_epoch(self, epoch: int) -> None:
        """Pre-epoch hook (e.g. importance-driven prefetching)."""

    def epoch_order(self, epoch: int) -> np.ndarray:
        """Sample ids to visit this epoch (default: random permutation)."""
        return self._rng.permutation(self._require_ctx().num_samples)

    def fetch(self, index: int) -> FetchOutcome:
        """Serve one sample request (default: always remote)."""
        ctx = self._require_ctx()
        payload = ctx.store.get(index)
        return FetchOutcome(index, index, payload, FetchSource.REMOTE)

    def backprop_mask(
        self, indices: np.ndarray, losses: np.ndarray
    ) -> Optional[np.ndarray]:
        """Per-sample 0/1 backprop weights; ``None`` trains every sample.

        Only iCache's compute-bound IS uses this (skip backprop for
        well-learned samples).
        """
        return None

    def after_batch(
        self,
        requested: np.ndarray,
        served: np.ndarray,
        losses: np.ndarray,
        embeddings: np.ndarray,
        epoch: int,
    ) -> None:
        """Post-batch hook: IS updates, cache refreshes."""

    def after_epoch(self, epoch: int, val_accuracy: float) -> None:
        """Post-epoch hook: elastic ratio adjustment, score snapshots."""

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Checkpointable policy state; subclasses extend.

        The base contribution is the policy's RNG stream (the bit-generator
        state), which exact mid-run recovery needs: epoch orders drawn after
        a restore must match the orders an uninterrupted run would draw.
        """
        return {"rng": self._rng.bit_generator.state}

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (call after ``setup``)."""
        self._rng.bit_generator.state = state["rng"]

    # ------------------------------------------------------------------
    def stats(self) -> CacheStats:
        """Aggregate cache stats (empty for cacheless policies)."""
        return CacheStats()

    @property
    def is_ms_per_batch(self) -> Optional[float]:
        """Extra per-batch importance-computation cost in milliseconds.

        The trainer combines this with the pipeline-overlap model to charge
        only the *visible* portion. ``None`` means "defer to the model
        spec's Table-1 IS cost" — the right answer for graph-based IS, whose
        cost scales with the model's embedding dimension.
        """
        return 0.0

    @property
    def imp_ratio(self) -> Optional[float]:
        """Current importance-cache fraction, if the policy has one."""
        return None
