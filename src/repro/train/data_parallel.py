"""Synchronous data-parallel training with real gradient math.

Extends the post-hoc scaling model of :mod:`repro.train.multigpu` with an
actual multi-worker run (paper §6.6 evaluates 1-4 GPUs):

* the dataset is partitioned across ``world_size`` workers (PyTorch's
  ``DistributedSampler`` convention);
* each worker holds a full model replica, its own cache policy over its
  shard, and its own simulated store/clock;
* every step, workers compute gradients on their shards; gradients are
  averaged and the identical update is applied to every replica — so the
  replicas stay bit-identical, which :meth:`replicas_in_sync` asserts.

Simulated step time = max over workers of their data-load time (the I/O
straggler effect) + per-worker compute + a ring-all-reduce communication
term that grows with the worker count — reproducing the Fig.-17 shape from
first principles rather than by scaling a single-GPU run.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.data.loader import DataLoader
from repro.data.synthetic import SyntheticDataset
from repro.nn.models import Model
from repro.nn.optim import SGD
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.storage.backends import RemoteStore
from repro.storage.clock import SimClock
from repro.storage.latency import ConstantLatency, LatencyModel
from repro.train.metrics import EpochMetrics, TrainResult
from repro.train.pipeline import StageCostModel
from repro.train.policy_base import PolicyContext, TrainingPolicy
from repro.train.trainer import TrainerConfig
from repro.utils.rng import RngLike, resolve_rng

__all__ = ["DataParallelTrainer", "WorkerState"]

#: SimClock stage the cache-protocol RPC tier charges. Mirrors
#: ``repro.dist.rpc.SimRpcChannel.STAGE`` without importing it — the
#: trainer must stay importable when the dist tier is absent or broken
#: (``repro.dist`` is only imported lazily, at shard-client construction).
RPC_STAGE = "rpc"


@dataclass
class WorkerState:
    """One worker's replica, shard, policy, and loader."""

    rank: int
    shard: np.ndarray  # global sample ids owned by this worker
    model: Model
    policy: TrainingPolicy
    store: RemoteStore
    clock: SimClock
    loader: DataLoader
    optimizer: SGD


class DataParallelTrainer:
    """Train ``world_size`` synchronized replicas over shards.

    Parameters
    ----------
    model_factory:
        ``() -> Model``; called once per worker. Factories must be
        deterministic (same seed) so replicas start identical.
    policy_factory:
        ``(rank) -> TrainingPolicy``; each worker gets its own cache over
        its shard (per-worker caches, as in the paper's multi-GPU setup).
    comm_ms_per_step:
        All-reduce cost at 2 workers; scaled by ``2 (K-1)/K``.
    cache_shards:
        With ``shared_cache=True`` and ``cache_shards > 0``, the shared
        tier becomes a :class:`~repro.dist.client.ShardedCacheClient`
        over that many shard servers; RPC latency is charged to the
        shared clock's ``"rpc"`` stage. ``0`` keeps the in-process
        monolithic cache.
    """

    def __init__(
        self,
        model_factory: Callable[[], Model],
        train_set: SyntheticDataset,
        test_set: SyntheticDataset,
        policy_factory: Callable[[int], TrainingPolicy],
        world_size: int = 2,
        config: Optional[TrainerConfig] = None,
        latency: Optional[LatencyModel] = None,
        comm_ms_per_step: float = 8.0,
        shared_cache: Optional[bool] = None,
        cache_shards: Optional[int] = None,
        rpc_latency: Optional[LatencyModel] = None,
        observer: Optional[Observer] = None,
        rng: RngLike = None,
    ) -> None:
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.train_set = train_set
        self.test_set = test_set
        self.config = config or TrainerConfig()
        # Topology knobs live in TrainerConfig; explicit arguments win.
        if shared_cache is None:
            shared_cache = self.config.shared_cache
        if cache_shards is None:
            cache_shards = self.config.cache_shards
        if cache_shards < 0:
            raise ValueError("cache_shards must be non-negative")
        if cache_shards and not shared_cache:
            raise ValueError("cache_shards requires shared_cache=True")
        self.world_size = int(world_size)
        self.comm_ms_per_step = float(comm_ms_per_step)
        self.cache_shards = int(cache_shards)
        self.observer = observer if observer is not None else NULL_OBSERVER
        # shared_cache=True models the paper's multi-GPU deployment: all
        # workers fetch through ONE policy/cache over the full dataset (one
        # Redis shared by every GPU), and each epoch's global importance
        # order is split round-robin across workers. shared_cache=False
        # gives fully sharded workers (each owns a fixed data partition
        # with its own cache — the DistributedSampler convention).
        self.shared_cache = bool(shared_cache)
        self._rng = resolve_rng(rng)

        n = len(train_set)
        per_worker_batch = max(1, self.config.batch_size // world_size)

        shared_policy: Optional[TrainingPolicy] = None
        shared_store: Optional[RemoteStore] = None
        shared_clock: Optional[SimClock] = None
        if self.shared_cache:
            shared_clock = SimClock()
            shared_store = RemoteStore(
                train_set.X,
                item_nbytes=train_set.item_nbytes,
                latency=latency or ConstantLatency(),
                clock=shared_clock,
            )
        self._shared_clock = shared_clock
        self._rpc_latency = rpc_latency

        if self.shared_cache:
            shards = [np.arange(n) for _ in range(world_size)]
        else:
            perm = self._rng.permutation(n)
            shards = np.array_split(perm, world_size)

        self.workers: List[WorkerState] = []
        for rank, shard in enumerate(shards):
            model = model_factory()
            if self.shared_cache:
                shard_set = train_set
                clock = shared_clock
                store = shared_store
                if rank == 0:
                    policy = policy_factory(rank)
                    if self.cache_shards:
                        # Swap the policy's cache tier for the sharded
                        # service: one logical cache, N shard servers,
                        # RPCs charged to the shared clock.
                        if not hasattr(policy, "cache_factory"):
                            raise ValueError(
                                "cache_shards requires a policy with a "
                                "cache_factory hook"
                            )
                        policy.cache_factory = self._make_shard_client
                    policy.setup(
                        PolicyContext(
                            dataset=train_set,
                            store=store,
                            batch_size=per_worker_batch,
                            total_epochs=self.config.epochs,
                            embedding_dim=model.embedding_dim,
                            rng=self._rng.spawn(1)[0],
                        )
                    )
                    shared_policy = policy
                else:
                    policy = shared_policy
            else:
                shard_set = train_set.subset(
                    shard, name=f"{train_set.name}-w{rank}"
                )
                clock = SimClock()
                store = RemoteStore(
                    shard_set.X,
                    item_nbytes=train_set.item_nbytes,
                    latency=latency or ConstantLatency(),
                    clock=clock,
                )
                policy = policy_factory(rank)
                policy.setup(
                    PolicyContext(
                        dataset=shard_set,
                        store=store,
                        batch_size=per_worker_batch,
                        total_epochs=self.config.epochs,
                        embedding_dim=model.embedding_dim,
                        rng=self._rng.spawn(1)[0],
                    )
                )
            loader = DataLoader(
                shard_set.y, policy.fetch, batch_size=per_worker_batch
            )
            optimizer = SGD(
                model.params(), lr=self.config.lr,
                momentum=self.config.momentum,
                weight_decay=self.config.weight_decay,
            )
            self.workers.append(
                WorkerState(rank, shard, model, policy, store, clock, loader,
                            optimizer)
            )

        # Broadcast worker 0's weights so every replica starts identical
        # even if the factory is not perfectly deterministic.
        ref = self.workers[0].model.state_dict()
        for w in self.workers[1:]:
            w.model.load_state_dict(ref)

        if self.observer.active:
            self._attach_observer()

    # ------------------------------------------------------------------
    def _make_shard_client(self, capacity: int, imp_ratio: float):
        """Cache-factory hook injected into the rank-0 policy.

        Imports :mod:`repro.dist` lazily so plain (non-sharded) runs and
        module imports never depend on the dist tier being present.
        """
        try:
            from repro.dist.client import ShardedCacheClient
            from repro.dist.retry import RetryPolicy
        except ImportError as exc:  # pragma: no cover - env-specific
            raise RuntimeError(
                "cache_shards > 0 needs the sharded cache service "
                "(repro.dist), which failed to import; run without "
                "--cache-shards or repair the installation"
            ) from exc
        cfg = self.config
        if cfg.clock_mode == "real":
            # Wall-clock tier: shard servers in real worker processes on
            # their own WallClock (RPC time is measured, not charged to
            # the run's simulated clock; breaker cooldowns and retry
            # backoffs become real seconds).
            return ShardedCacheClient(
                capacity,
                imp_ratio=imp_ratio,
                n_shards=self.cache_shards,
                transport="real",
                deadline_s=cfg.rpc_deadline_s,
                retry=RetryPolicy(max_attempts=cfg.rpc_retry_budget),
            )
        return ShardedCacheClient(
            capacity,
            imp_ratio=imp_ratio,
            n_shards=self.cache_shards,
            clock=self._shared_clock,
            latency=self._rpc_latency,
            deadline_s=cfg.rpc_deadline_s,
            retry=RetryPolicy(max_attempts=cfg.rpc_retry_budget),
        )

    def _shared_client(self):
        """The shared sharded-cache client, if this run uses one.

        Duck-typed on ``shard_snapshots`` (the one capability the run
        loop needs) rather than an isinstance check, to keep this module
        import-independent of ``repro.dist``.
        """
        if not self.cache_shards:
            return None
        cache = getattr(self.workers[0].policy, "cache", None)
        return cache if hasattr(cache, "shard_snapshots") else None

    def _maybe_resize_shards(self, client, epoch: int) -> None:
        """Epoch-boundary live-resize driver.

        At the configured trigger epoch the client plans the migration;
        every epoch boundary after that drains as many pending batches
        as the (possibly faulted) shard tier will take, so a stalled
        migration simply resumes next epoch once outages end and breaker
        cool-downs elapse. ``cache_shards`` tracks the client's live
        shard count once the ring swap lands.
        """
        at = self.config.resize_shards_at
        if at is not None and epoch == int(at[0]):
            client.resize(int(at[1]), drain=False)
        if client.migration is not None:
            client.continue_migration()
        self.cache_shards = client.n_shards

    def _attach_observer(self) -> None:
        """Wire the run observer through the shared store and policies."""
        obs = self.observer
        obs.hit_latency_s = self.config.hit_latency_s
        seen = set()
        for w in self.workers:
            if hasattr(w.store, "attach_observer") and id(w.store) not in seen:
                w.store.attach_observer(obs)
                seen.add(id(w.store))
            if id(w.policy) not in seen:
                w.policy.attach_observer(obs)
                seen.add(id(w.policy))

    def _emit_run_start(self) -> None:
        if not self.observer.active:
            return
        cfg = self.config
        first = self.workers[0]
        self.observer.on_run_start({
            "policy": first.policy.name,
            "model": first.model.spec.name if first.model.spec else "custom",
            "dataset": self.train_set.name,
            "epochs": cfg.epochs,
            "batch_size": cfg.batch_size,
            "io_workers": cfg.io_workers,
            "prefetch_workers": cfg.prefetch_workers,
            "hit_latency_s": cfg.hit_latency_s,
            "world_size": self.world_size,
            "shared_cache": self.shared_cache,
            "cache_shards": self.cache_shards,
        })

    # ------------------------------------------------------------------
    def replicas_in_sync(self, atol: float = 1e-10) -> bool:
        """True iff every replica's parameters match worker 0's."""
        ref = self.workers[0].model.state_dict()
        for w in self.workers[1:]:
            for k, v in w.model.state_dict().items():
                if k.startswith(("features", "head")) and "running" in k:
                    continue  # batchnorm running stats differ per shard
                if not np.allclose(v, ref[k], atol=atol):
                    return False
        return True

    def _all_reduce_and_step(self) -> None:
        """Average gradients across replicas, apply the same update to all."""
        params_per_worker = [w.model.params() for w in self.workers]
        n_params = len(params_per_worker[0])
        for pi in range(n_params):
            grads = [params_per_worker[k][pi][1] for k in range(self.world_size)]
            mean = np.mean(grads, axis=0)
            for g in grads:
                np.copyto(g, mean)
        for w in self.workers:
            w.optimizer.step()

    # ------------------------------------------------------------------
    def run(self) -> TrainResult:
        """Train all replicas synchronously; returns the run record."""
        cfg = self.config
        k = self.world_size
        first = self.workers[0]
        spec = first.model.spec
        costs = (
            StageCostModel.from_spec(spec)
            if spec is not None
            else StageCostModel(42.0, 35.0, 16.0)
        )
        result = TrainResult(
            policy_name=f"{first.policy.name}@dp{k}",
            model_name=spec.name if spec else "custom",
            dataset_name=self.train_set.name,
        )
        comm_factor = 2 * (k - 1) / k if k > 1 else 0.0
        val_accuracy = 0.0
        obs = self.observer
        run_span = None
        if obs.active:
            self._emit_run_start()
            run_span = obs.span_start(
                "run", first.clock.total_seconds,
                policy=result.policy_name, world_size=k,
            )
        client = self._shared_client()

        # In shared-cache mode every worker aliases one policy/store.
        policies = (
            [self.workers[0].policy] if self.shared_cache
            else [w.policy for w in self.workers]
        )
        clocks = (
            [self.workers[0].clock] if self.shared_cache
            else [w.clock for w in self.workers]
        )

        for epoch in range(cfg.epochs):
            epoch_span = None
            if obs.active:
                obs.set_epoch(epoch)
                epoch_span = obs.span_start("epoch", first.clock.total_seconds)
            for w in self.workers:
                w.optimizer.set_epoch(epoch)
            for p in policies:
                p.before_epoch(epoch)
            if client is not None:
                self._maybe_resize_shards(client, epoch)
            load_before = [c.stage_seconds(RemoteStore.STAGE) for c in clocks]
            # In wall-clock mode cache RPCs are measured on the client's
            # own WallClock, not charged to the shared simulated clock.
            rpc_clocks = (
                [client.clock] * len(clocks)
                if client is not None and cfg.clock_mode == "real"
                else clocks
            )
            rpc_before = [c.stage_seconds(RPC_STAGE) for c in rpc_clocks]
            stats_before = [
                (s.requests, s.hits + s.substitute_hits, s.hits,
                 s.substitute_hits)
                for s in (p.stats() for p in policies)
            ]
            if self.shared_cache:
                # One global importance order, split round-robin.
                order = self.workers[0].policy.epoch_order(epoch)
                iters = [
                    w.loader.iter_epoch(order[rank :: k])
                    for rank, w in enumerate(self.workers)
                ]
            else:
                iters = [
                    w.loader.iter_epoch(w.policy.epoch_order(epoch))
                    for w in self.workers
                ]
            epoch_loss, n_seen, n_steps = 0.0, 0, 0
            while True:
                batches = []
                for it in iters:
                    batches.append(next(it, None))
                live = [b for b in batches if b is not None]
                if not live:
                    break
                for w in self.workers:
                    w.optimizer.zero_grad()
                for w, batch in zip(self.workers, batches):
                    if batch is None:
                        continue  # uneven shard tails contribute zero grads
                    losses, emb = w.model.train_batch(batch.X, batch.y)
                    w.policy.after_batch(
                        batch.requested, batch.served, losses, emb, epoch
                    )
                    epoch_loss += float(losses.sum())
                    n_seen += len(batch)
                self._all_reduce_and_step()
                n_steps += 1

            # Stage accounting: straggler = slowest worker's load (sharded),
            # or total shared-store load divided across workers (shared).
            loads = [
                (c.stage_seconds(RemoteStore.STAGE) - b) / cfg.io_workers
                for c, b in zip(clocks, load_before)
            ]
            # Cache-protocol RPC time (sharded service only) is extra
            # data-path latency; like the shared-store load it is split
            # across the workers issuing the calls.
            rpcs = [
                (c.stage_seconds(RPC_STAGE) - b) / k
                for c, b in zip(rpc_clocks, rpc_before)
            ]
            data_load_s = (
                loads[0] / k + rpcs[0] if self.shared_cache
                else max(loads)
            )
            compute_s = n_steps * (costs.stage1_ms + costs.stage2_ms) / 1e3 * (
                (cfg.batch_size / k) / cfg.reference_batch
            )
            comm_s = n_steps * self.comm_ms_per_step / 1e3 * comm_factor
            mode = costs.recommended_mode()
            is_visible_s = n_steps * costs.visible_is_ms(mode) / 1e3

            if epoch % cfg.eval_every == 0 or epoch == cfg.epochs - 1:
                val_accuracy, _ = first.model.evaluate(
                    self.test_set.X, self.test_set.y
                )
            for p in policies:
                p.after_epoch(epoch, val_accuracy)

            stats_after = [
                (s.requests, s.hits + s.substitute_hits, s.hits,
                 s.substitute_hits)
                for s in (p.stats() for p in policies)
            ]
            req = sum(a[0] - b[0] for a, b in zip(stats_after, stats_before))
            hit = sum(a[1] - b[1] for a, b in zip(stats_after, stats_before))
            exact = sum(a[2] - b[2] for a, b in zip(stats_after, stats_before))
            sub = sum(a[3] - b[3] for a, b in zip(stats_after, stats_before))

            em = EpochMetrics(
                epoch=epoch,
                train_loss=epoch_loss / max(n_seen, 1),
                val_accuracy=val_accuracy,
                hit_ratio=hit / req if req else 0.0,
                exact_hit_ratio=exact / req if req else 0.0,
                substitute_ratio=sub / req if req else 0.0,
                data_load_s=data_load_s,
                compute_s=compute_s,
                is_visible_s=is_visible_s,
                epoch_time_s=data_load_s + compute_s + comm_s + is_visible_s,
                imp_ratio=first.policy.imp_ratio,
            )
            result.epochs.append(em)
            if obs.active:
                obs.on_epoch_metrics(dataclasses.asdict(em))
                if client is not None:
                    obs.on_shards(client.shard_snapshots())
            if epoch_span is not None:
                obs.span_end(
                    epoch_span, first.clock.total_seconds, steps=n_steps
                )
        if run_span is not None:
            obs.span_end(
                run_span, first.clock.total_seconds,
                epochs=len(result.epochs),
            )
        self.close()
        return result

    def close(self) -> None:
        """Release wall-clock resources — the real transport's shard
        worker processes. No-op (and idempotent) for simulated runs."""
        if self.config.clock_mode != "real":
            return
        client = self._shared_client()
        if client is not None and hasattr(client, "close"):
            client.close()
