"""Training loop with simulated-time accounting.

Drives a NumPy model through a policy (SpiderCache or baseline) and charges
simulated time per the Fig.-2 pipeline:

* **data_load** — each remote miss costs the latency model's fetch time
  (charged by :class:`~repro.storage.backends.RemoteStore` itself), divided
  by ``io_workers`` concurrent loader processes; cache hits cost
  ``hit_latency_s`` each.
* **compute** — per batch: ``stage1 + stage2 * trained_fraction`` ms from
  the model spec (selective backprop shrinks Stage2, iCache's compute win).
* **is_visible** — the pipeline-overlap model's *visible* slice of the
  policy's IS cost (hidden entirely for short-IS models, Fig. 12).

Real wall-clock time is spent doing genuine forward/backward math — the
learning dynamics are real; only I/O and GPU-relative speeds are simulated.

The epoch loop is resumable: :meth:`Trainer._run_epoch` accepts a
pre-drawn order, a starting batch slot, and a partially-filled
:class:`EpochAccumulator`, and invokes a per-batch hook — the seams
:class:`~repro.resilience.trainer.ResilientTrainer` uses to checkpoint
mid-epoch and replay exactly after a simulated preemption. Compute and
IS time are charged to the clock *per batch* (same epoch totals) so
simulated time advances mid-epoch — letting outage windows end and
circuit-breaker cool-downs elapse between batches rather than only at
epoch boundaries.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

import numpy as np

from repro.core.semantic_cache import FetchSource
from repro.data.loader import DataLoader
from repro.data.synthetic import SyntheticDataset
from repro.nn.models import Model
from repro.nn.optim import SGD
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.storage.backends import RemoteStore
from repro.storage.clock import SimClock
from repro.storage.latency import ConstantLatency, LatencyModel
from repro.train.metrics import EpochMetrics, TrainResult
from repro.train.pipeline import StageCostModel
from repro.train.policy_base import PolicyContext, TrainingPolicy
from repro.utils.rng import RngLike, resolve_rng

__all__ = ["Trainer", "TrainerConfig", "EpochAccumulator"]


@dataclass
class TrainerConfig:
    """Knobs for one training run."""

    epochs: int = 30
    batch_size: int = 128
    # "sim" (default): deterministic mode — SimClock time, the seeded
    # DeterministicScheduler executes prefetch slots, shard RPCs cross
    # the simulated channel; every run is bit-reproducible. "real":
    # wall-clock mode — prefetch slots run on real threads and the
    # shared sharded cache (if any) runs on real worker processes behind
    # RealRpcTransport; timings are measured, not modelled.
    clock_mode: str = "sim"
    lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 0.0
    # LR schedule: None (constant), "cosine", "step", or a ready
    # schedule object from repro.nn.optim.
    lr_schedule: Optional[object] = None
    # Optional per-batch preprocessing/augmentation (repro.data.transforms);
    # its declared per-item cost is charged to the "preprocess" stage.
    transform: Optional[object] = None
    io_workers: int = 4  # concurrent loader processes dividing fetch latency
    # Prefetching loader threads; 0 keeps the serial DataLoader. When >0,
    # fetch latency is modelled by max-of-window overlap accounting instead
    # of the io_workers divisor (never both — that would double-count).
    prefetch_workers: int = 0
    hit_latency_s: float = 20e-6  # in-memory cache hit cost
    eval_every: int = 1
    reference_batch: int = 128  # batch size the Table-1 ms costs assume
    # Multi-worker cache topology (DataParallelTrainer only): one shared
    # logical cache instead of per-worker caches, optionally partitioned
    # across `cache_shards` shard servers behind simulated RPC.
    shared_cache: bool = False
    cache_shards: int = 0
    # Sharded-service fault-tolerance knobs (ignored when cache_shards=0):
    # per-call RPC deadline and total attempts per logical request (1
    # disables retries); backoff/jitter shape lives in
    # repro.dist.retry.RetryPolicy defaults.
    rpc_deadline_s: float = 0.01
    rpc_retry_budget: int = 3
    # Live ring resize: (epoch, new_shard_count) — at that epoch boundary
    # the shared client re-rings and migrates keys, draining incrementally
    # at each subsequent boundary if shards are faulting.
    resize_shards_at: Optional[Tuple[int, int]] = None

    def build_schedule(self):
        """Resolve ``lr_schedule`` into a schedule object (or None)."""
        from repro.nn.optim import CosineLR, StepLR

        if self.lr_schedule is None:
            return None
        if self.lr_schedule == "cosine":
            return CosineLR(self.lr, total_epochs=self.epochs)
        if self.lr_schedule == "step":
            return StepLR(self.lr, step_size=max(1, self.epochs // 3))
        if isinstance(self.lr_schedule, str):
            raise ValueError(f"unknown lr_schedule {self.lr_schedule!r}")
        return self.lr_schedule


@dataclass
class EpochAccumulator:
    """Mid-epoch running totals — the restartable part of an epoch.

    Checkpointing this (plus the order array and the next batch slot) is
    what lets a preempted run resume mid-epoch and emit the exact
    :class:`~repro.train.metrics.EpochMetrics` an uninterrupted run would.
    """

    loss: float = 0.0
    n_seen: int = 0
    n_batches: int = 0  # non-empty (trained) batches
    compute_s: float = 0.0
    preprocess_s: float = 0.0
    hits: int = 0
    load_before_s: float = 0.0  # raw data_load stage total at epoch start
    stats_before: Tuple[int, int, int, int] = (0, 0, 0, 0)

    def state_dict(self) -> dict:
        """Serializable snapshot of the running totals."""
        return {
            "loss": self.loss,
            "n_seen": self.n_seen,
            "n_batches": self.n_batches,
            "compute_s": self.compute_s,
            "preprocess_s": self.preprocess_s,
            "hits": self.hits,
            "load_before_s": self.load_before_s,
            "stats_before": list(self.stats_before),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        self.loss = float(state["loss"])
        self.n_seen = int(state["n_seen"])
        self.n_batches = int(state["n_batches"])
        self.compute_s = float(state["compute_s"])
        self.preprocess_s = float(state["preprocess_s"])
        self.hits = int(state["hits"])
        self.load_before_s = float(state["load_before_s"])
        self.stats_before = tuple(int(x) for x in state["stats_before"])


class Trainer:
    """Runs ``model`` over ``train_set`` under ``policy``.

    The test set is evaluated every ``eval_every`` epochs; policies receive
    the latest accuracy in ``after_epoch`` (the Elastic Cache Manager's
    Accuracy Monitor input).
    """

    def __init__(
        self,
        model: Model,
        train_set: SyntheticDataset,
        test_set: SyntheticDataset,
        policy: TrainingPolicy,
        config: Optional[TrainerConfig] = None,
        latency: Optional[LatencyModel] = None,
        rng: RngLike = None,
        observer: Optional[Observer] = None,
    ) -> None:
        self.model = model
        self.train_set = train_set
        self.test_set = test_set
        self.policy = policy
        self.config = config or TrainerConfig()
        self._rng = resolve_rng(rng)
        self.observer = observer if observer is not None else NULL_OBSERVER

        self.clock = SimClock()
        self.store = RemoteStore(
            train_set.X,
            item_nbytes=train_set.item_nbytes,
            latency=latency or ConstantLatency(),
            clock=self.clock,
        )
        self.optimizer = SGD(
            model.params(),
            lr=self.config.lr,
            momentum=self.config.momentum,
            weight_decay=self.config.weight_decay,
            schedule=self.config.build_schedule(),
        )
        embedding_dim = model.embedding_dim
        policy.setup(
            PolicyContext(
                dataset=train_set,
                store=self.store,
                batch_size=self.config.batch_size,
                total_epochs=self.config.epochs,
                embedding_dim=embedding_dim,
                rng=self._rng,
            )
        )
        if self.config.clock_mode not in ("sim", "real"):
            raise ValueError(
                f"clock_mode must be 'sim' or 'real', "
                f"got {self.config.clock_mode!r}"
            )
        if self.config.prefetch_workers > 0:
            from repro.data.prefetch import PrefetchingDataLoader

            self.loader: DataLoader = PrefetchingDataLoader(
                train_set.y,
                policy.fetch,
                batch_size=self.config.batch_size,
                workers=self.config.prefetch_workers,
                clock=self.clock,
                stage=RemoteStore.STAGE,
                observer=self.observer,
                # Deterministic (seeded-scheduler) slot execution in sim
                # mode; real threads only when the run is wall-clock.
                executor=(
                    "threads" if self.config.clock_mode == "real"
                    else "deterministic"
                ),
            )
        else:
            self.loader = DataLoader(
                train_set.y, policy.fetch, batch_size=self.config.batch_size
            )
        self._val_accuracy = 0.0
        self._attach_observer()

    # ------------------------------------------------------------------
    def _attach_observer(self) -> None:
        """Wire ``self.observer`` through the store stack and the policy.

        Idempotent; re-run at the top of :meth:`run` because tests and
        the resilience layer wrap ``self.store`` after construction.
        """
        obs = self.observer
        if not obs.active:
            return
        obs.hit_latency_s = self.config.hit_latency_s
        store = self.store
        while True:
            # Duck-typed walk (isinstance on resilience types would cycle
            # imports): a wrapper owning a circuit breaker exposes it in
            # its own __dict__; __getattr__ forwarding is bypassed so each
            # breaker attaches exactly once.
            breaker = store.__dict__.get("breaker")
            if breaker is not None and hasattr(breaker, "attach_observer"):
                breaker.attach_observer(obs)
            inner = store.__dict__.get("inner")
            if inner is None:
                break
            store = inner
        if hasattr(store, "attach_observer"):
            store.attach_observer(obs)
        if hasattr(self.loader, "attach_observer"):
            self.loader.attach_observer(obs)
        self.policy.attach_observer(obs)

    # ------------------------------------------------------------------
    def _stage_costs(self) -> StageCostModel:
        spec = self.model.spec
        policy_is = self.policy.is_ms_per_batch  # None = defer to the spec
        if spec is not None:
            costs = StageCostModel.from_spec(spec)
            if policy_is is not None:
                costs = StageCostModel(costs.stage1_ms, costs.stage2_ms,
                                       policy_is)
            return costs
        return StageCostModel(42.0, 35.0,
                              16.0 if policy_is is None else policy_is)

    def _new_result(self) -> TrainResult:
        return TrainResult(
            policy_name=self.policy.name,
            model_name=self.model.spec.name if self.model.spec else "custom",
            dataset_name=self.train_set.name,
        )

    def _emit_run_start(self) -> None:
        """Record the run configuration in the trace (aggregators need
        ``io_workers``/``hit_latency_s`` to reproduce stage times)."""
        if not self.observer.active:
            return
        cfg = self.config
        self.observer.on_run_start({
            "policy": self.policy.name,
            "model": self.model.spec.name if self.model.spec else "custom",
            "dataset": self.train_set.name,
            "epochs": cfg.epochs,
            "batch_size": cfg.batch_size,
            "io_workers": cfg.io_workers,
            "prefetch_workers": cfg.prefetch_workers,
            "hit_latency_s": cfg.hit_latency_s,
        })

    def run(self) -> TrainResult:
        """Train for ``config.epochs`` epochs; returns the full run record."""
        self._attach_observer()
        obs = self.observer
        run_span = None
        if obs.active:
            self._emit_run_start()
            run_span = obs.span_start(
                "run", self.clock.total_seconds, policy=self.policy.name
            )
        result = self._new_result()
        for epoch in range(self.config.epochs):
            self._run_epoch(epoch, result)
        if run_span is not None:
            obs.span_end(
                run_span, self.clock.total_seconds, epochs=len(result.epochs)
            )
        return result

    # ------------------------------------------------------------------
    def _run_epoch(
        self,
        epoch: int,
        result: TrainResult,
        order: Optional[np.ndarray] = None,
        start_batch: int = 0,
        acc: Optional[EpochAccumulator] = None,
        batch_hook: Optional[
            Callable[[int, int, np.ndarray, "EpochAccumulator"], None]
        ] = None,
    ) -> None:
        """One epoch, optionally resumed from batch slot ``start_batch``.

        A fresh epoch (``order is None``) runs the policy's ``before_epoch``
        hook and draws the order; a resumed one must pass the checkpointed
        ``order``/``acc`` (the hook already ran in the original timeline —
        its effects live in the restored policy state). ``batch_hook`` fires
        after every batch slot — substituted or skipped alike — with
        ``(epoch, slot, order, acc)``; resilience layers preempt and
        checkpoint from it.
        """
        cfg = self.config
        costs = self._stage_costs()
        visible_is_per_batch_ms = costs.visible_is_ms(costs.recommended_mode())

        obs = self.observer
        epoch_span = None
        if obs.active:
            obs.set_epoch(epoch)
            epoch_span = obs.span_start("epoch", self.clock.total_seconds)
        self.optimizer.set_epoch(epoch)
        if order is None:
            self.policy.before_epoch(epoch)
            order = self.policy.epoch_order(epoch)
        if acc is None:
            acc = EpochAccumulator(
                load_before_s=self.clock.stage_seconds(RemoteStore.STAGE),
                stats_before=_snapshot(self.policy),
            )

        for slot in range(start_batch, self.loader.n_batches(order)):
            batch_span = None
            if obs.active:
                t_slot = self.clock.total_seconds
                batch_span = obs.span_start("batch", t_slot, slot=slot)
            batch = self.loader.collate(self.loader.batch_ids(order, slot))
            if obs.active:
                t_loaded = self.clock.total_seconds
                if t_loaded > t_slot:
                    obs.span_record("data_load", t_slot, t_loaded, slot=slot)
            if batch is not None:
                self._train_batch(
                    batch, epoch, acc, costs, visible_is_per_batch_ms,
                    slot=slot,
                )
            if batch_span is not None:
                obs.span_end(batch_span, self.clock.total_seconds)
            if batch_hook is not None:
                batch_hook(epoch, slot, order, acc)

        # Stage accounting for the epoch (compute/IS/preprocess were
        # already charged to the clock per batch).
        raw_load_s = self.clock.stage_seconds(RemoteStore.STAGE) - acc.load_before_s
        # With prefetching the raw total is already overlap-charged
        # (max-of-window); dividing it by io_workers again would model
        # the same parallelism twice.
        load_div = 1 if cfg.prefetch_workers > 0 else cfg.io_workers
        data_load_s = raw_load_s / load_div + acc.hits * cfg.hit_latency_s
        is_visible_s = acc.n_batches * visible_is_per_batch_ms / 1e3

        if epoch % cfg.eval_every == 0 or epoch == cfg.epochs - 1:
            self._val_accuracy, _ = self.model.evaluate(
                self.test_set.X, self.test_set.y
            )
        self.policy.after_epoch(epoch, self._val_accuracy)

        stats_after = _snapshot(self.policy)
        d_req = stats_after[0] - acc.stats_before[0]
        d_hit = stats_after[1] - acc.stats_before[1]
        d_exact = stats_after[2] - acc.stats_before[2]
        d_sub = stats_after[3] - acc.stats_before[3]
        hit_ratio = d_hit / d_req if d_req else 0.0
        exact_ratio = d_exact / d_req if d_req else 0.0
        sub_ratio = d_sub / d_req if d_req else 0.0

        score_std = None
        table = getattr(self.policy, "score_table", None)
        if table is not None and table.std_history:
            score_std = table.std_history[-1]

        em = EpochMetrics(
            epoch=epoch,
            train_loss=acc.loss / max(acc.n_seen, 1),
            val_accuracy=self._val_accuracy,
            hit_ratio=hit_ratio,
            exact_hit_ratio=exact_ratio,
            substitute_ratio=sub_ratio,
            data_load_s=data_load_s,
            compute_s=acc.compute_s,
            is_visible_s=is_visible_s,
            epoch_time_s=(
                data_load_s + acc.compute_s + is_visible_s
                + acc.preprocess_s
            ),
            imp_ratio=self.policy.imp_ratio,
            score_std=score_std,
            preprocess_s=acc.preprocess_s,
        )
        result.epochs.append(em)
        if obs.active:
            obs.on_epoch_metrics(dataclasses.asdict(em))
        if epoch_span is not None:
            obs.span_end(
                epoch_span, self.clock.total_seconds, batches=acc.n_batches
            )

    def _train_batch(
        self,
        batch,
        epoch: int,
        acc: EpochAccumulator,
        costs: StageCostModel,
        visible_is_per_batch_ms: float,
        slot: int = 0,
    ) -> None:
        cfg = self.config
        transform = cfg.transform
        self.optimizer.zero_grad()
        x = batch.X
        batch_preprocess_s = 0.0
        if transform is not None:
            x = transform(x, training=True)
            batch_preprocess_s = transform.cost_us_per_item * len(batch) / 1e6
            acc.preprocess_s += batch_preprocess_s
        trained_fraction = 1.0
        # One forward/backward pass; policies that mask backprop (iCache)
        # need the losses first, so their path re-runs the pass with the
        # per-sample weights applied.
        losses, emb = self.model.train_batch(x, batch.y)
        mask = self.policy.backprop_mask(batch.served, losses)
        if mask is not None:
            # Re-run with weights (the probe above already consumed the
            # layer caches, so gradients must be rebuilt).
            self.optimizer.zero_grad()
            losses, emb = self.model.train_batch(x, batch.y, mask)
            trained_fraction = float(np.mean(mask > 0))
        self.optimizer.step()

        self.policy.after_batch(
            batch.requested, batch.served, losses, emb, epoch
        )

        acc.loss += float(losses.sum())
        acc.n_seen += len(batch)
        acc.n_batches += 1
        acc.hits += sum(1 for s in batch.sources if s != FetchSource.REMOTE)
        scale = len(batch) / cfg.reference_batch
        batch_compute_s = (
            costs.stage1_ms + costs.stage2_ms * trained_fraction
        ) / 1e3 * scale
        acc.compute_s += batch_compute_s
        obs = self.observer
        t0 = self.clock.total_seconds if obs.active else 0.0
        self.clock.advance("compute", batch_compute_s)
        self.clock.advance("is_visible", visible_is_per_batch_ms / 1e3)
        if batch_preprocess_s:
            self.clock.advance("preprocess", batch_preprocess_s)
        if obs.active:
            # The advance amounts are known, so stage span bounds are
            # derived arithmetically from one clock read.
            t1 = t0 + batch_compute_s
            t2 = t1 + visible_is_per_batch_ms / 1e3
            obs.span_record("compute", t0, t1, slot=slot)
            obs.span_record("is_visible", t1, t2, slot=slot)
            if batch_preprocess_s:
                obs.span_record(
                    "preprocess", t2, t2 + batch_preprocess_s, slot=slot
                )
        if self.observer.active:
            self.observer.on_batch(
                slot,
                len(batch),
                trained_fraction,
                batch_compute_s,
                batch_preprocess_s,
                visible_is_per_batch_ms / 1e3,
            )


def _snapshot(policy: TrainingPolicy):
    s = policy.stats()
    return (
        s.requests,
        s.hits + s.substitute_hits,
        s.hits,
        s.substitute_hits,
    )
