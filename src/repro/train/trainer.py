"""Training loop with simulated-time accounting.

Drives a NumPy model through a policy (SpiderCache or baseline) and charges
simulated time per the Fig.-2 pipeline:

* **data_load** — each remote miss costs the latency model's fetch time
  (charged by :class:`~repro.storage.backends.RemoteStore` itself), divided
  by ``io_workers`` concurrent loader processes; cache hits cost
  ``hit_latency_s`` each.
* **compute** — per batch: ``stage1 + stage2 * trained_fraction`` ms from
  the model spec (selective backprop shrinks Stage2, iCache's compute win).
* **is_visible** — the pipeline-overlap model's *visible* slice of the
  policy's IS cost (hidden entirely for short-IS models, Fig. 12).

Real wall-clock time is spent doing genuine forward/backward math — the
learning dynamics are real; only I/O and GPU-relative speeds are simulated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.semantic_cache import FetchSource
from repro.data.loader import DataLoader
from repro.data.synthetic import SyntheticDataset
from repro.nn.models import Model
from repro.nn.optim import SGD
from repro.storage.backends import RemoteStore
from repro.storage.clock import SimClock
from repro.storage.latency import ConstantLatency, LatencyModel
from repro.train.metrics import EpochMetrics, TrainResult
from repro.train.pipeline import StageCostModel
from repro.train.policy_base import PolicyContext, TrainingPolicy
from repro.utils.rng import RngLike, resolve_rng

__all__ = ["Trainer", "TrainerConfig"]


@dataclass
class TrainerConfig:
    """Knobs for one training run."""

    epochs: int = 30
    batch_size: int = 128
    lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 0.0
    # LR schedule: None (constant), "cosine", "step", or a ready
    # schedule object from repro.nn.optim.
    lr_schedule: Optional[object] = None
    # Optional per-batch preprocessing/augmentation (repro.data.transforms);
    # its declared per-item cost is charged to the "preprocess" stage.
    transform: Optional[object] = None
    io_workers: int = 4  # concurrent loader processes dividing fetch latency
    hit_latency_s: float = 20e-6  # in-memory cache hit cost
    eval_every: int = 1
    reference_batch: int = 128  # batch size the Table-1 ms costs assume

    def build_schedule(self):
        """Resolve ``lr_schedule`` into a schedule object (or None)."""
        from repro.nn.optim import CosineLR, StepLR

        if self.lr_schedule is None:
            return None
        if self.lr_schedule == "cosine":
            return CosineLR(self.lr, total_epochs=self.epochs)
        if self.lr_schedule == "step":
            return StepLR(self.lr, step_size=max(1, self.epochs // 3))
        if isinstance(self.lr_schedule, str):
            raise ValueError(f"unknown lr_schedule {self.lr_schedule!r}")
        return self.lr_schedule


class Trainer:
    """Runs ``model`` over ``train_set`` under ``policy``.

    The test set is evaluated every ``eval_every`` epochs; policies receive
    the latest accuracy in ``after_epoch`` (the Elastic Cache Manager's
    Accuracy Monitor input).
    """

    def __init__(
        self,
        model: Model,
        train_set: SyntheticDataset,
        test_set: SyntheticDataset,
        policy: TrainingPolicy,
        config: Optional[TrainerConfig] = None,
        latency: Optional[LatencyModel] = None,
        rng: RngLike = None,
    ) -> None:
        self.model = model
        self.train_set = train_set
        self.test_set = test_set
        self.policy = policy
        self.config = config or TrainerConfig()
        self._rng = resolve_rng(rng)

        self.clock = SimClock()
        self.store = RemoteStore(
            train_set.X,
            item_nbytes=train_set.item_nbytes,
            latency=latency or ConstantLatency(),
            clock=self.clock,
        )
        self.optimizer = SGD(
            model.params(),
            lr=self.config.lr,
            momentum=self.config.momentum,
            weight_decay=self.config.weight_decay,
            schedule=self.config.build_schedule(),
        )
        embedding_dim = model.embedding_dim
        policy.setup(
            PolicyContext(
                dataset=train_set,
                store=self.store,
                batch_size=self.config.batch_size,
                total_epochs=self.config.epochs,
                embedding_dim=embedding_dim,
                rng=self._rng,
            )
        )
        self.loader = DataLoader(
            train_set.y, policy.fetch, batch_size=self.config.batch_size
        )

    # ------------------------------------------------------------------
    def _stage_costs(self) -> StageCostModel:
        spec = self.model.spec
        policy_is = self.policy.is_ms_per_batch  # None = defer to the spec
        if spec is not None:
            costs = StageCostModel.from_spec(spec)
            if policy_is is not None:
                costs = StageCostModel(costs.stage1_ms, costs.stage2_ms,
                                       policy_is)
            return costs
        return StageCostModel(42.0, 35.0,
                              16.0 if policy_is is None else policy_is)

    def run(self) -> TrainResult:
        """Train for ``config.epochs`` epochs; returns the full run record."""
        cfg = self.config
        result = TrainResult(
            policy_name=self.policy.name,
            model_name=self.model.spec.name if self.model.spec else "custom",
            dataset_name=self.train_set.name,
        )
        costs = self._stage_costs()
        mode = costs.recommended_mode()
        visible_is_per_batch_ms = costs.visible_is_ms(mode)
        val_accuracy = 0.0

        for epoch in range(cfg.epochs):
            self.optimizer.set_epoch(epoch)
            self.policy.before_epoch(epoch)
            order = self.policy.epoch_order(epoch)
            stats_before = _snapshot(self.policy)
            load_before = self.clock.stage_seconds(RemoteStore.STAGE)

            epoch_loss = 0.0
            n_seen = 0
            n_batches = 0
            compute_s = 0.0
            preprocess_s = 0.0
            hits_this_epoch = 0
            transform = cfg.transform

            for batch in self.loader.iter_epoch(order):
                self.optimizer.zero_grad()
                x = batch.X
                if transform is not None:
                    x = transform(x, training=True)
                    preprocess_s += (
                        transform.cost_us_per_item * len(batch) / 1e6
                    )
                mask = None
                trained_fraction = 1.0
                # One forward/backward pass; policies that mask backprop
                # (iCache) need the losses first, so their path re-runs the
                # pass with the per-sample weights applied.
                losses, emb = self.model.train_batch(x, batch.y)
                mask = self.policy.backprop_mask(batch.served, losses)
                if mask is not None:
                    # Re-run with weights (the probe above already consumed
                    # the layer caches, so gradients must be rebuilt).
                    self.optimizer.zero_grad()
                    losses, emb = self.model.train_batch(x, batch.y, mask)
                    trained_fraction = float(np.mean(mask > 0))
                self.optimizer.step()

                self.policy.after_batch(
                    batch.requested, batch.served, losses, emb, epoch
                )

                epoch_loss += float(losses.sum())
                n_seen += len(batch)
                n_batches += 1
                hits_this_epoch += sum(
                    1 for s in batch.sources if s != FetchSource.REMOTE
                )
                scale = len(batch) / cfg.reference_batch
                compute_s += (
                    costs.stage1_ms + costs.stage2_ms * trained_fraction
                ) / 1e3 * scale

            # Stage accounting for the epoch.
            raw_load_s = self.clock.stage_seconds(RemoteStore.STAGE) - load_before
            data_load_s = raw_load_s / cfg.io_workers + hits_this_epoch * cfg.hit_latency_s
            is_visible_s = n_batches * visible_is_per_batch_ms / 1e3
            self.clock.advance("compute", compute_s)
            self.clock.advance("is_visible", is_visible_s)
            if preprocess_s:
                self.clock.advance("preprocess", preprocess_s)

            if epoch % cfg.eval_every == 0 or epoch == cfg.epochs - 1:
                val_accuracy, _ = self.model.evaluate(self.test_set.X, self.test_set.y)
            self.policy.after_epoch(epoch, val_accuracy)

            stats_after = _snapshot(self.policy)
            d_req = stats_after[0] - stats_before[0]
            d_hit = stats_after[1] - stats_before[1]
            d_exact = stats_after[2] - stats_before[2]
            d_sub = stats_after[3] - stats_before[3]
            hit_ratio = d_hit / d_req if d_req else 0.0
            exact_ratio = d_exact / d_req if d_req else 0.0
            sub_ratio = d_sub / d_req if d_req else 0.0

            score_std = None
            table = getattr(self.policy, "score_table", None)
            if table is not None and table.std_history:
                score_std = table.std_history[-1]

            result.epochs.append(
                EpochMetrics(
                    epoch=epoch,
                    train_loss=epoch_loss / max(n_seen, 1),
                    val_accuracy=val_accuracy,
                    hit_ratio=hit_ratio,
                    exact_hit_ratio=exact_ratio,
                    substitute_ratio=sub_ratio,
                    data_load_s=data_load_s,
                    compute_s=compute_s,
                    is_visible_s=is_visible_s,
                    epoch_time_s=(
                        data_load_s + compute_s + is_visible_s + preprocess_s
                    ),
                    imp_ratio=self.policy.imp_ratio,
                    score_std=score_std,
                    preprocess_s=preprocess_s,
                )
            )
        return result


def _snapshot(policy: TrainingPolicy):
    s = policy.stats()
    return (
        s.requests,
        s.hits + s.substitute_hits,
        s.hits,
        s.substitute_hits,
    )
