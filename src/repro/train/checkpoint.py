"""Checkpointing: save/restore model + optimizer training state.

Long training runs on spot VMs — the deployment the paper motivates with
("low-cost GPU Spot VMs ... prone to termination") — need resumable state.
Checkpoints are plain ``.npz`` archives holding the model's ``state_dict``,
the optimizer's momentum buffers and epoch counter, and arbitrary metadata.

Resuming is exact: a run checkpointed at epoch k and resumed reproduces the
parameter trajectory of an uninterrupted run, which the tests assert.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from repro.nn.models import Model
from repro.nn.optim import SGD

__all__ = ["CheckpointError", "save_checkpoint", "load_checkpoint", "restore_into"]

_FORMAT_VERSION = 1


class CheckpointError(RuntimeError, ValueError):
    """A checkpoint file is unreadable, malformed, or from the future.

    Raised with a message naming the file and the specific defect
    (truncated archive, missing header, unsupported ``format_version``)
    so operators can tell a corrupt checkpoint from a code bug. Subclasses
    ``ValueError`` too for callers that predate the dedicated type.
    """


def save_checkpoint(
    path: Union[str, Path],
    model: Model,
    optimizer: Optional[SGD] = None,
    epoch: int = 0,
    metadata: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write a checkpoint archive; returns the path written.

    ``metadata`` must be JSON-serializable (stored inside the archive).
    """
    path = Path(path)
    arrays: Dict[str, np.ndarray] = {}
    for k, v in model.state_dict().items():
        arrays[f"model/{k}"] = np.asarray(v)
    if optimizer is not None:
        for i, v in enumerate(optimizer._velocity):
            arrays[f"optim/velocity/{i}"] = np.asarray(v)
    header = {
        "format_version": _FORMAT_VERSION,
        "epoch": int(epoch),
        "has_optimizer": optimizer is not None,
        "metadata": metadata or {},
    }
    arrays["__header__"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **arrays)
    # np.savez appends .npz when absent; normalize the returned path.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_checkpoint(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a checkpoint into a plain dict.

    Returns ``{"epoch", "metadata", "model", "optimizer_velocity"}`` where
    ``model`` maps state-dict keys to arrays and ``optimizer_velocity`` is a
    list (or ``None`` when the checkpoint carried no optimizer).

    Raises :class:`CheckpointError` (not a bare decode/zip error) for a
    truncated or garbage archive, a missing header, or an archive written
    by a newer format version.
    """
    path = Path(path)
    try:
        npz = np.load(path)
    except FileNotFoundError:
        raise
    except Exception as exc:  # zipfile/pickle/np errors → one clear type
        raise CheckpointError(
            f"checkpoint {path} is not a readable .npz archive "
            f"(truncated or corrupt?): {exc}"
        ) from exc
    with npz as data:
        if "__header__" not in data.files:
            raise CheckpointError(
                f"checkpoint {path} has no __header__ entry — not a "
                "checkpoint archive, or one written before headers existed"
            )
        try:
            header = json.loads(bytes(data["__header__"]).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"checkpoint {path} header is not valid JSON "
                f"(corrupt archive?): {exc}"
            ) from exc
        version = header.get("format_version")
        if version != _FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint {path} has format_version {version!r}; this "
                f"build reads version {_FORMAT_VERSION}. A newer version "
                "means the checkpoint was written by a newer build — "
                "upgrade before resuming from it."
            )
        model_state = {
            k[len("model/"):]: data[k] for k in data.files if k.startswith("model/")
        }
        velocity = None
        if header["has_optimizer"]:
            keys = sorted(
                (k for k in data.files if k.startswith("optim/velocity/")),
                key=lambda k: int(k.rsplit("/", 1)[1]),
            )
            velocity = [data[k] for k in keys]
    return {
        "epoch": header["epoch"],
        "metadata": header["metadata"],
        "model": model_state,
        "optimizer_velocity": velocity,
    }


def restore_into(
    checkpoint: Dict[str, Any],
    model: Model,
    optimizer: Optional[SGD] = None,
) -> int:
    """Load a checkpoint dict into live objects; returns the saved epoch.

    The model architecture must match (same state-dict keys and shapes);
    mismatches raise ``KeyError``/``ValueError`` rather than silently
    truncating.
    """
    model.load_state_dict(checkpoint["model"])
    if optimizer is not None:
        velocity = checkpoint["optimizer_velocity"]
        if velocity is None:
            raise ValueError("checkpoint carries no optimizer state")
        if len(velocity) != len(optimizer._velocity):
            raise ValueError("optimizer parameter count mismatch")
        for dst, src in zip(optimizer._velocity, velocity):
            if dst.shape != src.shape:
                raise ValueError("optimizer velocity shape mismatch")
            np.copyto(dst, src)
        optimizer.set_epoch(checkpoint["epoch"])
    return int(checkpoint["epoch"])
