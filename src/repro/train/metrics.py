"""Training-run records: per-epoch metrics and run summaries."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = ["EpochMetrics", "TrainResult"]


@dataclass
class EpochMetrics:
    """One epoch's observations (the unit most figures plot)."""

    epoch: int
    train_loss: float
    val_accuracy: float
    hit_ratio: float
    exact_hit_ratio: float
    substitute_ratio: float
    data_load_s: float
    compute_s: float
    is_visible_s: float
    epoch_time_s: float
    imp_ratio: Optional[float] = None
    score_std: Optional[float] = None
    preprocess_s: float = 0.0


@dataclass
class TrainResult:
    """Full run record returned by :meth:`Trainer.run`."""

    policy_name: str
    model_name: str
    dataset_name: str
    epochs: List[EpochMetrics] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def final_accuracy(self) -> float:
        if not self.epochs:
            raise ValueError("empty run")
        return self.epochs[-1].val_accuracy

    @property
    def best_accuracy(self) -> float:
        return max(e.val_accuracy for e in self.epochs)

    @property
    def total_time_s(self) -> float:
        return sum(e.epoch_time_s for e in self.epochs)

    @property
    def mean_hit_ratio(self) -> float:
        """Average per-epoch hit ratio (the Fig. 14 metric)."""
        if not self.epochs:
            return 0.0
        return float(np.mean([e.hit_ratio for e in self.epochs]))

    def series(self, attr: str) -> np.ndarray:
        """Extract one per-epoch attribute as an array (for plotting)."""
        return np.asarray([getattr(e, attr) for e in self.epochs], dtype=np.float64)

    def time_to_accuracy(self, threshold: float) -> Optional[float]:
        """Simulated seconds until validation accuracy first reaches
        ``threshold`` (SHADE's time-to-accuracy metric).

        Returns ``None`` if the run never reaches the threshold. Time is
        accumulated through the end of the first qualifying epoch.
        """
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        elapsed = 0.0
        for e in self.epochs:
            elapsed += e.epoch_time_s
            if e.val_accuracy >= threshold:
                return elapsed
        return None

    def stage_totals(self) -> Dict[str, float]:
        """Summed per-stage simulated time across the run."""
        return {
            "data_load_s": float(sum(e.data_load_s for e in self.epochs)),
            "compute_s": float(sum(e.compute_s for e in self.epochs)),
            "is_visible_s": float(sum(e.is_visible_s for e in self.epochs)),
            "preprocess_s": float(sum(e.preprocess_s for e in self.epochs)),
        }

    def summary(self) -> Dict[str, float]:
        """Flat summary dict for benchmark tables."""
        return {
            "final_accuracy": self.final_accuracy,
            "best_accuracy": self.best_accuracy,
            "total_time_s": self.total_time_s,
            "mean_hit_ratio": self.mean_hit_ratio,
            **self.stage_totals(),
        }
