"""Simulated RPC channel with deadlines and fault injection.

Every cache-protocol call crosses :class:`SimRpcChannel`, which charges
per-call latency to the shared :class:`~repro.storage.clock.SimClock`'s
``"rpc"`` stage and enforces a **per-call deadline**. Failures are
*classified* — the retry and breaker layers treat them differently:

* :class:`ShardOutageError` — the target shard is inside a
  :class:`~repro.resilience.faults.FaultPlan` outage window. The request
  never reaches the server (connection refused); the caller pays the
  round-trip it took to find out, capped at the deadline. Definite: the
  call did **not** execute.
* :class:`RpcTimeoutError` — the call's (possibly brownout-inflated)
  latency exceeded the deadline. The caller gives up at the deadline but
  the request *did* reach the server and **did execute** — the ambiguous
  failure mode real RPCs have, which is why every shard-server mutation
  is idempotent and the client enqueues anti-entropy repairs for
  timed-out writes.

Brownouts never fail a call by themselves; they multiply its latency,
which may push it over the deadline (a brownout-induced timeout is still
a timeout, not an outage).
"""

from __future__ import annotations

import abc
from collections import Counter
from typing import Any, Dict, List, Optional

from repro.obs.observer import NULL_OBSERVER, Observer
from repro.resilience.faults import FaultPlan
from repro.storage.clock import SimClock
from repro.storage.latency import ConstantLatency, LatencyModel

__all__ = [
    "RpcError",
    "ShardOutageError",
    "RpcTimeoutError",
    "Transport",
    "SimRpcChannel",
]

#: Simulated bytes of framing/headers added to every call's payload when
#: sampling its latency.
RPC_OVERHEAD_NBYTES = 256


class RpcError(RuntimeError):
    """Base class for cache-protocol RPC failures."""

    def __init__(self, shard: int, method: str, detail: str) -> None:
        super().__init__(f"rpc {method} to shard {shard}: {detail}")
        self.shard = int(shard)
        self.method = str(method)


class ShardOutageError(RpcError):
    """The shard is down (fault-plan outage window); call never executed."""


class RpcTimeoutError(RpcError):
    """The call exceeded its deadline; it may still have executed."""


class Transport(abc.ABC):
    """One-attempt RPC transport to a fleet of cache shard servers.

    A transport owns the shard servers' lifetime and carries exactly one
    call attempt — retries, backoff, and circuit breaking live *above* it
    in :class:`~repro.dist.client.ShardedCacheClient`, which works
    unchanged over any implementation. Two ship:

    * :class:`SimRpcChannel` (``name="sim"``) — in-process servers on a
      :class:`~repro.storage.clock.SimClock`; deterministic, supports
      fault injection; the differential-testing oracle.
    * :class:`~repro.dist.transport.RealRpcTransport` (``name="real"``) —
      servers in real worker processes behind a length-prefixed
      ``multiprocessing.connection`` protocol on a
      :class:`~repro.storage.clock.WallClock`.

    Error classification is shared (and parity-tested): a call either
    returns, raises :class:`ShardOutageError` (definitely never
    executed), or raises :class:`RpcTimeoutError` (ambiguous — it *did or
    may have* executed server-side; only the reply is lost). Transports
    also expose a stats surface (``calls`` / ``failures`` / ``timeouts``
    plus ``per_shard_*`` Counters) the client snapshots per shard.
    """

    #: Short mode tag stamped on spans/metrics (``"sim"`` / ``"real"``).
    name: str = "?"
    #: Clock stage charged per attempt.
    STAGE = "rpc"

    calls: int
    failures: int
    timeouts: int
    per_shard_calls: Counter
    per_shard_failures: Counter
    per_shard_timeouts: Counter

    def _init_stats(self) -> None:
        self.calls = 0
        self.failures = 0  # outage-classified attempts
        self.timeouts = 0  # deadline-classified attempts
        self.per_shard_calls = Counter()
        self.per_shard_failures = Counter()
        self.per_shard_timeouts = Counter()
        self._obs = NULL_OBSERVER

    def attach_observer(self, observer: Observer) -> None:
        """Publish per-attempt latency/outcome to ``observer``."""
        self._obs = observer

    # -- data plane ----------------------------------------------------
    @abc.abstractmethod
    def call(self, shard: int, method: str, *args: Any, nbytes: int = 0) -> Any:
        """One RPC attempt; returns the server method's result."""

    @abc.abstractmethod
    def peek(self, shard: int, method: str, *args: Any) -> Any:
        """Control-plane read: no latency charge, no faults, no stats.

        Used by audits (:meth:`ShardedCacheClient.verify_placement`) that
        must not perturb the run's accounting or trip breakers.
        """

    # -- shard lifecycle -----------------------------------------------
    @abc.abstractmethod
    def add_shard(self, shard: int) -> None:
        """Provision an (empty) server for ``shard``; idempotent."""

    @abc.abstractmethod
    def remove_shard(self, shard: int) -> None:
        """Decommission ``shard``'s server; unknown ids are a no-op."""

    @abc.abstractmethod
    def has_shard(self, shard: int) -> bool:
        """Whether ``shard`` currently has a (possibly dead) server."""

    @property
    @abc.abstractmethod
    def shard_ids(self) -> List[int]:
        """Sorted ids of all provisioned shards."""

    # -- optional features ---------------------------------------------
    def set_fault_plan(self, shard: int, plan: Optional[FaultPlan]) -> None:
        """Install a fault-injection plan (simulated transports only)."""
        raise NotImplementedError(
            f"{self.name!r} transport does not support fault plans; "
            "injected faults are a simulation feature"
        )

    def close(self) -> None:
        """Release transport resources (worker processes, sockets)."""

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class SimRpcChannel(Transport):
    """Single-attempt simulated RPC to a set of shard servers.

    Retries, backoff, and circuit breaking live *above* this channel (in
    :mod:`repro.dist.retry` / the client); the channel models exactly one
    attempt: latency, deadline, and fault injection.

    Parameters
    ----------
    servers:
        Optional seed ``{shard_id: CacheShardServer}``; the dict is owned
        by the channel afterwards and mutated on ring resizes (it stays
        visible to callers that keep a reference — tests reach into
        live servers through it).
    clock:
        Shared simulated clock; every attempt (including failed ones)
        charges the :attr:`STAGE` stage.
    latency:
        Per-call latency model over the payload size; defaults to a
        datacenter-RPC-like constant (~0.2 ms per call).
    deadline_s:
        Per-call deadline. Calls whose sampled latency exceeds it charge
        exactly ``deadline_s`` and raise :class:`RpcTimeoutError`.
    fault_plans:
        Optional ``{shard_id: FaultPlan}`` injecting per-shard outage and
        brownout windows, evaluated against the shared clock.
    """

    STAGE = "rpc"
    name = "sim"

    def __init__(
        self,
        servers: Optional[Dict[int, Any]] = None,
        clock: Optional[SimClock] = None,
        latency: Optional[LatencyModel] = None,
        deadline_s: float = 0.01,
        fault_plans: Optional[Dict[int, FaultPlan]] = None,
    ) -> None:
        if deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        self.servers = servers if servers is not None else {}
        self.clock = clock if clock is not None else SimClock()
        self.latency = latency if latency is not None else ConstantLatency(
            base_s=2e-4, bandwidth_bps=10e9
        )
        self.deadline_s = float(deadline_s)
        self.fault_plans: Dict[int, FaultPlan] = dict(fault_plans or {})
        self._init_stats()

    # -- shard lifecycle -----------------------------------------------
    def add_shard(self, shard: int) -> None:
        from repro.dist.server import CacheShardServer

        shard = int(shard)
        if shard not in self.servers:
            self.servers[shard] = CacheShardServer(shard)

    def remove_shard(self, shard: int) -> None:
        self.servers.pop(int(shard), None)

    def has_shard(self, shard: int) -> bool:
        return int(shard) in self.servers

    @property
    def shard_ids(self) -> List[int]:
        return sorted(self.servers)

    def peek(self, shard: int, method: str, *args: Any) -> Any:
        """Direct in-process read: free of charge, faults, and stats."""
        server = self.servers.get(int(shard))
        if server is None:
            raise RpcError(int(shard), method, "unknown shard")
        return getattr(server, method)(*args)

    # ------------------------------------------------------------------
    def set_fault_plan(self, shard: int, plan: Optional[FaultPlan]) -> None:
        """Install (or clear, with ``None``) one shard's fault plan."""
        if plan is None:
            self.fault_plans.pop(int(shard), None)
        else:
            self.fault_plans[int(shard)] = plan

    def call(self, shard: int, method: str, *args: Any, nbytes: int = 0) -> Any:
        """One RPC attempt; returns the server method's result.

        Raises :class:`ShardOutageError` / :class:`RpcTimeoutError` per
        the classification above. ``nbytes`` is the simulated payload
        size (request or response, whichever dominates).
        """
        shard = int(shard)
        server = self.servers.get(shard)
        if server is None:
            raise RpcError(shard, method, "unknown shard")
        self.calls += 1
        self.per_shard_calls[shard] += 1
        now = self.clock.total_seconds
        plan = self.fault_plans.get(shard)
        lat = self.latency.sample(int(nbytes) + RPC_OVERHEAD_NBYTES)
        if plan is not None:
            if plan.outage_active(now):
                # Connection refused: pay the (capped) round trip, no
                # server-side effect.
                charged = min(lat, self.deadline_s)
                self.clock.advance(self.STAGE, charged)
                self.failures += 1
                self.per_shard_failures[shard] += 1
                if self._obs.active:
                    self._obs.on_rpc(shard, method, charged, ok=False,
                                     error="outage")
                    self._obs.span_record(
                        "rpc_attempt", now, now + charged,
                        shard=shard, method=method, ok=False, error="outage",
                        transport=self.name,
                    )
                raise ShardOutageError(
                    shard, method, f"outage at t={now:.3f}s"
                )
            lat *= plan.latency_multiplier(now)
        if lat > self.deadline_s:
            # The caller abandons the call at the deadline, but the
            # request reached the server: it executes anyway (ambiguous
            # timeout — the result is simply lost).
            self.clock.advance(self.STAGE, self.deadline_s)
            getattr(server, method)(*args)
            self.timeouts += 1
            self.per_shard_timeouts[shard] += 1
            if self._obs.active:
                self._obs.on_rpc(shard, method, self.deadline_s, ok=False,
                                 error="timeout")
                self._obs.span_record(
                    "rpc_attempt", now, now + self.deadline_s,
                    shard=shard, method=method, ok=False, error="timeout",
                    transport=self.name,
                )
            raise RpcTimeoutError(
                shard, method,
                f"latency {lat * 1e3:.2f}ms exceeded deadline "
                f"{self.deadline_s * 1e3:.2f}ms",
            )
        self.clock.advance(self.STAGE, lat)
        result = getattr(server, method)(*args)
        if self._obs.active:
            self._obs.on_rpc(shard, method, lat)
            self._obs.span_record(
                "rpc_attempt", now, now + lat,
                shard=shard, method=method, ok=True, transport=self.name,
            )
        return result
