"""Wall-clock RPC transport: shard servers in real worker processes.

:class:`RealRpcTransport` implements the :class:`~repro.dist.rpc.Transport`
interface with one OS process per shard. Each worker runs a stock
:class:`~repro.dist.server.CacheShardServer` behind a
``multiprocessing.connection`` duplex pipe — the connection layer
length-prefixes and pickles every message, giving the same framing a
hand-rolled socket protocol would, without a second serializer to test.

The failure classification matches :class:`~repro.dist.rpc.SimRpcChannel`
exactly (the Hypothesis parity suite in ``tests/dist`` holds the two
bit-identical), because the retry/breaker/anti-entropy machinery above
keys off it:

* dead worker / broken pipe → :class:`~repro.dist.rpc.ShardOutageError`
  — connection refused, the call definitely did not execute;
* no reply within the deadline → :class:`~repro.dist.rpc.RpcTimeoutError`
  — the request was written to a live pipe, so the server may execute it
  anyway; the late reply is discarded by sequence number on the next
  call, mirroring the sim channel's "executes anyway, result lost"
  ambiguous timeout.

Fault *injection* is a simulation feature; wall-clock chaos is made with
:meth:`RealRpcTransport.kill_shard` (SIGKILL the worker) and
:meth:`RealRpcTransport.restart_shard` (fresh, empty server — cache
payloads are soft state).
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import time
from typing import Any, List, Optional, Tuple

from repro.dist.rpc import RpcError, RpcTimeoutError, ShardOutageError, Transport
from repro.dist.server import CacheShardServer
from repro.storage.clock import WallClock

__all__ = ["RealRpcTransport", "shard_worker_main"]

#: How long :meth:`RealRpcTransport.close` waits for a worker to exit
#: after the shutdown sentinel before escalating to ``kill()``.
_JOIN_TIMEOUT_S = 2.0

#: Shutdown sentinel (any non-tuple message stops the worker loop).
_SHUTDOWN = None


def shard_worker_main(conn: Any, shard_id: int) -> None:
    """Worker-process entry point: serve one shard until EOF/sentinel.

    Replies are ``(seq, ok, result_or_exc)`` tagged with the request's
    sequence number so the client can discard replies that arrive after
    their call already timed out.
    """
    server = CacheShardServer(shard_id)
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            if not isinstance(msg, tuple):  # _SHUTDOWN sentinel
                break
            seq, method, args = msg
            try:
                result: Any = getattr(server, method)(*args)
                reply: Tuple[int, bool, Any] = (seq, True, result)
            except BaseException as exc:  # noqa: BLE001 — forwarded to client
                try:
                    pickle.dumps(exc)
                except Exception:
                    exc = RuntimeError(f"{type(exc).__name__}: {exc}")
                reply = (seq, False, exc)
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                break
    finally:
        try:
            conn.close()
        except OSError:
            pass


class _ShardWorker:
    """One shard's process + pipe endpoint + request sequence counter."""

    __slots__ = ("shard_id", "conn", "proc", "seq")

    def __init__(self, shard_id: int, ctx: Any) -> None:
        self.shard_id = int(shard_id)
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.conn = parent_conn
        self.proc = ctx.Process(
            target=shard_worker_main,
            args=(child_conn, self.shard_id),
            name=f"repro-shard-{self.shard_id}",
            daemon=True,  # backstop: never outlive the client process
        )
        self.proc.start()
        child_conn.close()  # child's end lives in the child now
        self.seq = 0

    # ------------------------------------------------------------------
    def request(self, method: str, args: Tuple[Any, ...], deadline_s: float) -> Any:
        """One call attempt; raises Outage/Timeout per the module doc."""
        if not self.proc.is_alive():
            raise ShardOutageError(
                self.shard_id, method, "worker process is dead"
            )
        self.seq += 1
        seq = self.seq
        try:
            self.conn.send((seq, method, args))
        except (BrokenPipeError, OSError):
            raise ShardOutageError(
                self.shard_id, method, "connection refused (pipe closed)"
            ) from None
        deadline = time.perf_counter() + deadline_s
        while True:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                raise RpcTimeoutError(
                    self.shard_id, method,
                    f"no reply within deadline {deadline_s * 1e3:.2f}ms",
                )
            try:
                if not self.conn.poll(remaining):
                    continue  # loop re-checks the deadline and raises
                rseq, ok, payload = self.conn.recv()
            except (EOFError, OSError):
                # Worker died mid-call: the request may or may not have
                # executed, but the *connection* is gone for good — every
                # later attempt fails instantly, which is the outage
                # (connection refused) shape, and what the breaker needs.
                raise ShardOutageError(
                    self.shard_id, method, "worker died mid-call"
                ) from None
            if rseq != seq:
                continue  # stale reply from a call that already timed out
            if ok:
                return payload
            raise payload  # server-side exception, re-raised verbatim

    def shutdown(self, kill: bool = False) -> None:
        if self.proc.is_alive():
            if kill:
                self.proc.kill()
            else:
                try:
                    self.conn.send(_SHUTDOWN)
                except (BrokenPipeError, OSError):
                    pass
            self.proc.join(_JOIN_TIMEOUT_S)
            if self.proc.is_alive():
                self.proc.kill()
                self.proc.join(_JOIN_TIMEOUT_S)
        try:
            self.conn.close()
        except OSError:
            pass
        self.proc.close()


class RealRpcTransport(Transport):
    """Shard servers in real worker processes; time is wall time.

    Parameters
    ----------
    shard_ids:
        Shards to provision eagerly (the client normally provisions its
        own via :meth:`add_shard`).
    clock:
        Defaults to a fresh :class:`~repro.storage.clock.WallClock`. The
        retry layer's backoff charges become real sleeps; breaker
        cooldowns are real seconds.
    deadline_s:
        Per-call reply deadline. Real IPC has genuine latency jitter, so
        wall-clock runs want a *much* looser deadline than the simulated
        0.01 s default (the CLI uses 1 s).
    mp_context:
        ``multiprocessing`` context; defaults to ``fork`` where available
        (fast worker start) else the platform default.
    """

    name = "real"

    def __init__(
        self,
        shard_ids: Tuple[int, ...] = (),
        clock: Optional[Any] = None,
        deadline_s: float = 1.0,
        mp_context: Optional[Any] = None,
    ) -> None:
        if deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        if mp_context is None:
            try:
                mp_context = mp.get_context("fork")
            except ValueError:  # pragma: no cover — non-fork platforms
                mp_context = mp.get_context()
        self._ctx = mp_context
        self.clock = clock if clock is not None else WallClock()
        self.deadline_s = float(deadline_s)
        self._workers: dict = {}
        self._init_stats()
        for sid in shard_ids:
            self.add_shard(sid)

    # -- shard lifecycle -----------------------------------------------
    def add_shard(self, shard: int) -> None:
        shard = int(shard)
        if shard not in self._workers:
            self._workers[shard] = _ShardWorker(shard, self._ctx)

    def remove_shard(self, shard: int) -> None:
        worker = self._workers.pop(int(shard), None)
        if worker is not None:
            worker.shutdown()

    def has_shard(self, shard: int) -> bool:
        return int(shard) in self._workers

    @property
    def shard_ids(self) -> List[int]:
        return sorted(self._workers)

    # -- chaos hooks ----------------------------------------------------
    def kill_shard(self, shard: int) -> None:
        """SIGKILL one shard's worker (its id stays provisioned, so
        every later call fails as an outage until :meth:`restart_shard`)."""
        worker = self._workers.get(int(shard))
        if worker is None:
            raise RpcError(int(shard), "kill", "unknown shard")
        if worker.proc.is_alive():
            worker.proc.kill()
            worker.proc.join(_JOIN_TIMEOUT_S)

    def restart_shard(self, shard: int) -> None:
        """Replace one shard's worker with a fresh, *empty* server —
        cache payloads are soft state; the client's anti-entropy and
        degraded-read paths tolerate the loss."""
        shard = int(shard)
        worker = self._workers.get(shard)
        if worker is None:
            raise RpcError(shard, "restart", "unknown shard")
        worker.shutdown(kill=True)
        self._workers[shard] = _ShardWorker(shard, self._ctx)

    # -- data plane -----------------------------------------------------
    def call(self, shard: int, method: str, *args: Any, nbytes: int = 0) -> Any:
        shard = int(shard)
        worker = self._workers.get(shard)
        if worker is None:
            raise RpcError(shard, method, "unknown shard")
        self.calls += 1
        self.per_shard_calls[shard] += 1
        t0 = self.clock.total_seconds
        try:
            result = worker.request(method, tuple(args), self.deadline_s)
        except ShardOutageError:
            self.failures += 1
            self.per_shard_failures[shard] += 1
            self._record(shard, method, t0, ok=False, error="outage")
            raise
        except RpcTimeoutError:
            self.timeouts += 1
            self.per_shard_timeouts[shard] += 1
            self._record(shard, method, t0, ok=False, error="timeout")
            raise
        self._record(shard, method, t0, ok=True)
        return result

    def peek(self, shard: int, method: str, *args: Any) -> Any:
        """Control-plane read: same wire, but no stats and a generous
        fixed deadline (audits must not race the configured budget)."""
        worker = self._workers.get(int(shard))
        if worker is None:
            raise RpcError(int(shard), method, "unknown shard")
        return worker.request(method, tuple(args), max(self.deadline_s, 5.0))

    def _record(self, shard: int, method: str, t0: float,
                ok: bool, error: Optional[str] = None) -> None:
        elapsed = max(self.clock.total_seconds - t0, 0.0)
        # Record (without sleeping) the measured attempt time against the
        # rpc stage so breakdowns stay comparable with sim runs.
        self.clock.advance_parallel(self.STAGE, [elapsed])
        if self._obs.active:
            if ok:
                self._obs.on_rpc(shard, method, elapsed)
            else:
                self._obs.on_rpc(shard, method, elapsed, ok=False, error=error)
            self._obs.span_record(
                "rpc_attempt", t0, t0 + elapsed,
                shard=shard, method=method, ok=ok,
                **({} if error is None else {"error": error}),
                transport=self.name,
            )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut every worker down (idempotent)."""
        workers, self._workers = self._workers, {}
        for worker in workers.values():
            worker.shutdown()
