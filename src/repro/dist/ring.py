"""Consistent-hash ring mapping sample keys to shard servers.

splitmix64-hashed virtual nodes on a 64-bit ring. Each shard owns
``vnodes`` points whose positions depend only on ``(shard_id, replica,
seed)`` — *not* on the shard count — so growing the ring from K to K+1
shards leaves every surviving shard's points in place and only the keys
that land in the new shard's arcs move (the classic minimal-disruption
property the live-resize migration relies on).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterable, List, Tuple

__all__ = ["splitmix64", "ConsistentHashRing", "ring_diff"]

_MASK = (1 << 64) - 1
#: Default hash-domain seed; any fixed value works, but every participant
#: of one cache service must agree on it.
DEFAULT_SEED = 0x5D15C0DE


def splitmix64(x: int) -> int:
    """One splitmix64 finalizer round — a cheap, well-mixed 64-bit hash."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK
    z = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & _MASK
    z = (z ^ (z >> 27)) * 0x94D049BB133111EB & _MASK
    return (z ^ (z >> 31)) & _MASK


class ConsistentHashRing:
    """Key -> shard map over splitmix64 virtual nodes.

    Parameters
    ----------
    n_shards:
        Number of shard servers (ids ``0..n_shards-1``).
    vnodes:
        Virtual nodes per shard; more vnodes = better balance at the cost
        of a larger sorted point array.
    seed:
        Hash-domain seed; rings with equal ``(vnodes, seed)`` and
        different shard counts share the surviving shards' points.
    """

    def __init__(self, n_shards: int, vnodes: int = 64,
                 seed: int = DEFAULT_SEED) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.n_shards = int(n_shards)
        self.vnodes = int(vnodes)
        self.seed = int(seed)
        points: List[Tuple[int, int]] = []
        for shard in range(self.n_shards):
            for replica in range(self.vnodes):
                h = splitmix64(
                    (shard << 32) ^ replica ^ self.seed
                )
                points.append((h, shard))
        points.sort()
        self._hashes = [p[0] for p in points]
        self._shards = [p[1] for p in points]

    # ------------------------------------------------------------------
    def shard_for(self, key: int) -> int:
        """Owning shard of ``key`` (deterministic)."""
        h = splitmix64(int(key) ^ self.seed)
        i = bisect_right(self._hashes, h)
        if i == len(self._hashes):
            i = 0  # wrap around the ring
        return self._shards[i]

    def partition(self, keys: Iterable[int]) -> Dict[int, List[int]]:
        """Group ``keys`` by owning shard (shards with no keys omitted)."""
        out: Dict[int, List[int]] = {}
        for k in keys:
            out.setdefault(self.shard_for(k), []).append(k)
        return out

    def spawn(self, n_shards: int) -> "ConsistentHashRing":
        """A ring of a different size over the same hash domain."""
        return ConsistentHashRing(n_shards, vnodes=self.vnodes, seed=self.seed)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConsistentHashRing):
            return NotImplemented
        return (self.n_shards, self.vnodes, self.seed) == (
            other.n_shards, other.vnodes, other.seed
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ConsistentHashRing(n_shards={self.n_shards}, "
                f"vnodes={self.vnodes})")


def ring_diff(
    old: ConsistentHashRing,
    new: ConsistentHashRing,
    keys: Iterable[int],
) -> Dict[int, Tuple[int, int]]:
    """Keys whose owner changes between two rings.

    Returns ``{key: (old_shard, new_shard)}`` for exactly the keys that
    must migrate when the ring is resized from ``old`` to ``new``.
    """
    moves: Dict[int, Tuple[int, int]] = {}
    for k in keys:
        src = old.shard_for(k)
        dst = new.shard_for(k)
        if src != dst:
            moves[int(k)] = (src, dst)
    return moves
