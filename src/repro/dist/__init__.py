"""Sharded shared-cache service — the fault-tolerant tier.

Partitions the two-layer :class:`~repro.core.semantic_cache.SemanticCache`
across N :class:`~repro.dist.server.CacheShardServer` partitions behind a
simulated RPC channel, fronted by a
:class:`~repro.dist.client.ShardedCacheClient` that every data-parallel
worker shares. The client keeps the *logical* cache state (importance
heap, homophily FIFO + neighbor cover map, capacity split) locally and
the payloads on the shards, which is what makes the service

* **bit-identical** to the monolithic cache for any shard count when no
  faults fire (the Hypothesis differential oracle in ``tests/dist``), and
* **gracefully degraded** when shards do fail: lookups become misses,
  admits become counted ``dropped_admits``, and the global
  capacity/eviction/FIFO invariants are never corrupted.

Modules:

* :mod:`~repro.dist.ring` — splitmix64 consistent-hash ring (virtual
  nodes, minimal disruption on resize);
* :mod:`~repro.dist.rpc` — the :class:`Transport` interface and the
  simulated :class:`SimRpcChannel` with per-call deadlines, fault-plan
  outage/brownout injection, and timeout-vs-outage error classification;
* :mod:`~repro.dist.transport` — :class:`RealRpcTransport`, the
  wall-clock backend running shard servers in real worker processes
  behind a length-prefixed ``multiprocessing.connection`` protocol;
* :mod:`~repro.dist.retry` — seeded-jitter capped exponential backoff
  with a per-request retry budget;
* :mod:`~repro.dist.server` — idempotent shard partition servers;
* :mod:`~repro.dist.client` — the breaker-guarded coordinating client;
* :mod:`~repro.dist.migration` — live ring resizing with retry-safe,
  interruptible, batched key migration.
"""

from repro.dist.client import ShardedCacheClient
from repro.dist.migration import MigrationState
from repro.dist.retry import RetryBudgetExhausted, RetryPolicy
from repro.dist.ring import ConsistentHashRing
from repro.dist.rpc import (
    RpcError,
    RpcTimeoutError,
    ShardOutageError,
    SimRpcChannel,
    Transport,
)
from repro.dist.server import CacheShardServer
from repro.dist.transport import RealRpcTransport

__all__ = [
    "ConsistentHashRing",
    "CacheShardServer",
    "Transport",
    "SimRpcChannel",
    "RealRpcTransport",
    "ShardedCacheClient",
    "MigrationState",
    "RetryPolicy",
    "RetryBudgetExhausted",
    "RpcError",
    "RpcTimeoutError",
    "ShardOutageError",
]
