"""Shard partition servers.

A :class:`CacheShardServer` owns one partition of the payload bytes for
both cache layers. It is deliberately *dumb*: all policy decisions
(admission, eviction order, FIFO turnover, the capacity split, which
node covers a request) live in the
:class:`~repro.dist.client.ShardedCacheClient`; the server is a keyed
payload store with hit counters.

Every mutating method is **idempotent** — puts overwrite, deletes of
absent keys are no-ops, migration imports overwrite — because the RPC
channel's timeout semantics are ambiguous (a timed-out call may have
executed) and the retry layer may replay any call.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

__all__ = ["CacheShardServer"]

_LAYERS = ("imp", "hom")


class CacheShardServer:
    """One shard's partition of the importance + homophily payloads."""

    def __init__(self, shard_id: int) -> None:
        self.shard_id = int(shard_id)
        self._stores: Dict[str, Dict[int, Any]] = {"imp": {}, "hom": {}}
        self.imp_hits = 0
        self.hom_hits = 0
        self.hom_substitute_hits = 0

    def _store(self, layer: str) -> Dict[int, Any]:
        try:
            return self._stores[layer]
        except KeyError:
            raise ValueError(f"unknown layer {layer!r}; expected {_LAYERS}")

    # -- importance layer ----------------------------------------------
    def imp_get(self, key: int) -> Optional[Any]:
        """Payload of ``key`` or ``None`` (the client treats ``None`` as
        a lost entry and degrades to a miss)."""
        payload = self._stores["imp"].get(int(key))
        if payload is not None:
            self.imp_hits += 1
        return payload

    def imp_put(self, key: int, payload: Any) -> None:
        """Insert or overwrite (idempotent)."""
        self._stores["imp"][int(key)] = payload

    def imp_delete(self, key: int) -> None:
        """Remove if present (idempotent)."""
        self._stores["imp"].pop(int(key), None)

    # -- homophily layer ------------------------------------------------
    def hom_get(self, key: int, substitute: bool = False) -> Optional[Any]:
        """Payload of node ``key``; ``substitute`` only picks the counter."""
        payload = self._stores["hom"].get(int(key))
        if payload is not None:
            if substitute:
                self.hom_substitute_hits += 1
            else:
                self.hom_hits += 1
        return payload

    def hom_put(self, key: int, payload: Any) -> None:
        """Insert or overwrite (idempotent)."""
        self._stores["hom"][int(key)] = payload

    def hom_delete(self, key: int) -> None:
        """Remove if present (idempotent)."""
        self._stores["hom"].pop(int(key), None)

    # -- bulk / migration ------------------------------------------------
    def bulk_delete(self, entries: Iterable[Tuple[str, int]]) -> None:
        """Anti-entropy repair: drop ``(layer, key)`` pairs (idempotent)."""
        for layer, key in entries:
            self._store(layer).pop(int(key), None)

    def migrate_out(self, layer: str, keys: Iterable[int]) -> Dict[int, Any]:
        """Read-only export of the requested keys that are present."""
        store = self._store(layer)
        out: Dict[int, Any] = {}
        for k in keys:
            payload = store.get(int(k))
            if payload is not None:
                out[int(k)] = payload
        return out

    def migrate_in(self, layer: str, entries: Dict[int, Any]) -> None:
        """Import migrated entries, overwriting any stale copies
        (idempotent — safe to replay after an ambiguous timeout)."""
        store = self._store(layer)
        for k, payload in entries.items():
            store[int(k)] = payload

    # -- introspection ----------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Hit counters, fetchable over any transport (process-remote
        servers can't expose bare attributes)."""
        return {
            "imp_hits": self.imp_hits,
            "hom_hits": self.hom_hits,
            "hom_substitute_hits": self.hom_substitute_hits,
            "imp_len": len(self._stores["imp"]),
            "hom_len": len(self._stores["hom"]),
        }

    def occupancy(self, layer: str) -> int:
        """Number of payloads resident in one layer."""
        return len(self._store(layer))

    def keys(self, layer: str) -> List[int]:
        """Resident keys of one layer (insertion order)."""
        return list(self._store(layer).keys())

    def payload_nbytes(self, layer: str, key: int) -> int:
        """Simulated size of one payload (0 if absent)."""
        payload = self._store(layer).get(int(key))
        if payload is None:
            return 0
        return int(np.asarray(payload).nbytes)
