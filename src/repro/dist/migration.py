"""Live ring resizing: batched, retry-safe, interruptible key migration.

When the client's ring is resized, every resident key whose owner
changes must move shards — over the same fault-injected RPC channel as
normal traffic. The protocol per batch (one ``(layer, src, dst)`` group
of keys):

1. ``migrate_out`` on the source — read-only export;
2. ``migrate_in`` on the destination — idempotent overwrite;
3. flip the client's per-key location map to the destination (the
   point of no return: lookups now route to the new shard);
4. ``bulk_delete`` on the source — best-effort; failures park in the
   client's anti-entropy queue.

Because locations only flip after a *successful* ``migrate_in``, and
both migration RPCs are idempotent, a batch can fail at any step and be
replayed wholesale later: a timed-out ``migrate_in`` that secretly
executed is simply overwritten on the retry, and until the flip the
source copy keeps serving lookups. Faults therefore leave batches
**pending**, never half-applied — the chaos suite drives outages through
mid-flight migrations to prove it.

A :class:`MigrationState` is the client's record of an in-flight resize;
``ShardedCacheClient.continue_migration`` drains it (batches are
re-planned against live metadata at execution time, so keys evicted or
re-admitted since planning are handled correctly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Deque, Dict, List, Tuple
from collections import deque

from repro.dist.ring import ConsistentHashRing

__all__ = ["MigrationBatch", "MigrationState", "plan_migration"]

#: Default keys per migration transfer batch.
DEFAULT_BATCH_SIZE = 32


@dataclass(frozen=True)
class MigrationBatch:
    """One planned transfer: ``keys`` of ``layer`` from ``src`` to ``dst``."""

    layer: str
    src: int
    dst: int
    keys: Tuple[int, ...]


@dataclass
class MigrationState:
    """An in-flight ring resize.

    ``pending`` drains front-to-back as batches complete; a batch that
    fails (outage, breaker open, retry budget burned) is rotated to the
    back so one dead shard cannot starve the rest of the migration.
    """

    old_n_shards: int
    new_n_shards: int
    target_ring: ConsistentHashRing
    pending: Deque[MigrationBatch] = field(default_factory=deque)
    planned_moves: int = 0
    moved_keys: int = 0
    failed_batches: int = 0  # batch attempts that failed (will be retried)

    @property
    def done(self) -> bool:
        """True once every planned batch has been applied (or voided)."""
        return not self.pending

    def progress(self) -> Dict[str, int]:
        """Counters for logs/observability."""
        return {
            "old_n_shards": self.old_n_shards,
            "new_n_shards": self.new_n_shards,
            "planned_moves": self.planned_moves,
            "moved_keys": self.moved_keys,
            "pending_batches": len(self.pending),
            "failed_batches": self.failed_batches,
        }


def plan_migration(
    old_n_shards: int,
    target_ring: ConsistentHashRing,
    locations: Dict[str, Dict[int, int]],
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> MigrationState:
    """Plan the batched transfers for a resize.

    ``locations`` maps layer name (``"imp"``/``"hom"``) to the client's
    authoritative ``{key: current_shard}`` map. Keys already on their
    target shard are skipped; the rest are grouped by
    ``(layer, src, dst)`` and chunked into :class:`MigrationBatch` es.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    state = MigrationState(
        old_n_shards=int(old_n_shards),
        new_n_shards=target_ring.n_shards,
        target_ring=target_ring,
    )
    groups: Dict[Tuple[str, int, int], List[int]] = {}
    for layer, loc in locations.items():
        for key, src in loc.items():
            dst = target_ring.shard_for(key)
            if dst != src:
                groups.setdefault((layer, src, dst), []).append(int(key))
    for (layer, src, dst), keys in sorted(groups.items()):
        state.planned_moves += len(keys)
        for i in range(0, len(keys), batch_size):
            state.pending.append(
                MigrationBatch(layer, src, dst, tuple(keys[i : i + batch_size]))
            )
    return state
