"""Fault-tolerant sharded cache client (metadata here, payloads there).

:class:`ShardedCacheClient` presents the exact
:class:`~repro.core.semantic_cache.SemanticCache` API to the trainer and
the policy, but stores payload bytes on
:class:`~repro.dist.server.CacheShardServer` partitions reached over a
deadline-enforcing :class:`~repro.dist.rpc.Transport` — the simulated,
fault-injected :class:`~repro.dist.rpc.SimRpcChannel` (deterministic
oracle) or the wall-clock
:class:`~repro.dist.transport.RealRpcTransport` (servers in real worker
processes), selected by the ``transport`` parameter. All
retry/breaker/anti-entropy machinery below is transport-agnostic.

Design: **all policy state is client-side**. The client owns one
:class:`~repro.utils.heap.IndexedMinHeap` (importance scores + global
tiebreaks), the homophily FIFO with its neighbor cover map, both layers'
stats, and the per-key location maps. Shards hold only payload bytes.
Consequences:

* every admission/eviction/substitution *decision* is identical to the
  monolith's, so a fault-free sharded run is **bit-identical** (same
  ``state_dict``, same stats) to a monolithic run for any shard count —
  the differential oracle in ``tests/dist`` proves it for K in {1, 2, 4}
  and across live ring resizes;
* an RPC failure can only lose *payload availability*, never corrupt
  policy state: failed lookups degrade to misses (served by the next
  protocol stage), failed admits are counted as ``dropped_admits`` and
  leave metadata untouched, so capacity/eviction/FIFO invariants hold
  through arbitrary outage/brownout schedules.

Each shard sits behind its own
:class:`~repro.resilience.breaker.CircuitBreaker`; retries use the
seeded-jitter backoff of :class:`~repro.dist.retry.RetryPolicy`. Write
ordering is *payload first*: a put RPC must succeed before any metadata
changes, and victim deletes afterwards are best-effort (failures park in
a per-shard anti-entropy queue, flushed opportunistically after the next
successful call to that shard).

Live resizing: :meth:`resize` plans a key migration to a ring of the new
size (see :mod:`repro.dist.migration`) and :meth:`continue_migration`
drains it over the same faulty channel — interruptible, idempotent, and
verified by :meth:`verify_placement`.

The client is single-threaded by design (one loader thread per worker in
the simulated data-parallel trainer), so unlike the monolith it carries
no lock stripes.
"""

from __future__ import annotations

from collections import Counter, OrderedDict, defaultdict
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.cache.base import CacheStats
from repro.core.semantic_cache import (
    DegradedStats,
    FetchOutcome,
    FetchSource,
    split_capacity,
)
from repro.dist.migration import (
    DEFAULT_BATCH_SIZE,
    MigrationState,
    plan_migration,
)
from repro.dist.retry import RetryBudgetExhausted, RetryPolicy
from repro.dist.ring import DEFAULT_SEED, ConsistentHashRing
from repro.dist.rpc import (
    RpcError,
    RpcTimeoutError,
    ShardOutageError,
    SimRpcChannel,
    Transport,
)
from repro.dist.server import CacheShardServer
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.errors import CircuitOpenError
from repro.storage.clock import SimClock
from repro.storage.latency import LatencyModel
from repro.utils.heap import IndexedMinHeap

__all__ = ["ShardedCacheClient", "ImportanceView", "HomophilyView"]

#: Failures after which a shard interaction degrades instead of raising:
#: a burned retry budget (an ``RpcError`` subclass) or a fail-fast
#: rejection from an open per-shard breaker.
_DEGRADE_ERRORS = (RpcError, CircuitOpenError)

#: Single-attempt channel failures (retried / parked by the layers above).
_ATTEMPT_ERRORS = (ShardOutageError, RpcTimeoutError)


class ImportanceView:
    """Importance-layer facade with the monolith ImportanceCache's
    policy-facing API (capacity, membership, ``min_score``, ``admit``),
    backed by the client's metadata and the shard tier's payloads."""

    def __init__(self, client: "ShardedCacheClient", capacity: int) -> None:
        self._client = client
        self.capacity = int(capacity)
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._client._imp_loc)

    def __contains__(self, key: int) -> bool:
        return int(key) in self._client._imp_loc

    def min_score(self) -> Optional[float]:
        """Score of the least-important resident, or ``None`` when empty."""
        heap = self._client._heap
        if not len(heap):
            return None
        return heap.min_priority()

    def admit(self, key: int, value: Any, score: float) -> bool:
        """Offer a sample; same decision rule as the monolith, but the
        payload put must clear the RPC tier first (a failed put is a
        dropped admit, not an exception)."""
        return self._client._admit_importance(int(key), value, float(score))

    def keys(self) -> List[int]:
        """Resident sample ids (metadata insertion order)."""
        return list(self._client._imp_loc)


class HomophilyView:
    """Homophily-layer facade mirroring HomophilyCache's read API."""

    def __init__(self, client: "ShardedCacheClient", capacity: int) -> None:
        self._client = client
        self.capacity = int(capacity)
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._client._hom_entries)

    def __contains__(self, key: int) -> bool:
        return int(key) in self._client._hom_entries

    def covers(self, index: int) -> bool:
        """True if ``index`` is a cached node or in a cached node's
        neighbor list."""
        c = self._client
        return index in c._neighbor_of or index in c._hom_entries

    def keys(self) -> List[int]:
        """Cached high-degree node ids in FIFO order."""
        return list(self._client._hom_entries)

    def neighbor_list(self, key: int) -> Tuple[int, ...]:
        """Neighbor IDs stored with a cached node (KeyError if absent)."""
        return self._client._hom_entries[int(key)]

    @property
    def covered_count(self) -> int:
        """Distinct sample ids currently servable (nodes + neighbors)."""
        c = self._client
        covered = set(c._neighbor_of)
        covered.update(c._hom_entries)
        return len(covered)


class ShardedCacheClient:
    """SemanticCache-compatible client over breaker-guarded shard RPCs.

    Parameters
    ----------
    total_capacity / imp_ratio:
        Item budget and importance split — exactly as the monolith.
    n_shards:
        Initial shard-server count (consistent-hash ring size).
    transport:
        ``"sim"`` (default) builds a :class:`SimRpcChannel` — in-process
        servers, simulated clock, fault injection; the deterministic
        oracle. ``"real"`` builds a
        :class:`~repro.dist.transport.RealRpcTransport` — servers in
        real worker processes on a wall clock (``latency`` /
        ``fault_plans`` are rejected; chaos uses the transport's
        ``kill_shard``). A prebuilt :class:`~repro.dist.rpc.Transport`
        instance is also accepted.
    clock / latency / deadline_s / fault_plans:
        Forwarded to the transport (shared clock, per-call latency
        model — sim only, per-call deadline, per-shard fault schedules —
        sim only).
    retry:
        :class:`RetryPolicy` for every cache-protocol call; default
        policy retries twice with seeded-jitter exponential backoff.
    breaker_failure_threshold / breaker_cooldown_s / breaker_close_threshold:
        Per-shard :class:`CircuitBreaker` parameters (every shard gets
        its own breaker; new shards added by :meth:`resize` inherit
        them).
    vnodes / seed:
        Consistent-hash ring geometry (see :mod:`repro.dist.ring`).
    migration_batch_size:
        Keys per migration transfer batch during a live resize.
    """

    def __init__(
        self,
        total_capacity: int,
        imp_ratio: float = 0.9,
        n_shards: int = 1,
        transport: Any = "sim",
        clock: Optional[SimClock] = None,
        latency: Optional[LatencyModel] = None,
        deadline_s: float = 0.01,
        retry: Optional[RetryPolicy] = None,
        fault_plans: Optional[Dict[int, Any]] = None,
        breaker_failure_threshold: int = 3,
        breaker_cooldown_s: float = 0.05,
        breaker_close_threshold: int = 1,
        vnodes: int = 64,
        seed: int = DEFAULT_SEED,
        migration_batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        if total_capacity < 0:
            raise ValueError("total_capacity must be non-negative")
        if not 0.0 <= imp_ratio <= 1.0:
            raise ValueError("imp_ratio must be in [0, 1]")
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.total_capacity = int(total_capacity)
        self._imp_ratio = float(imp_ratio)
        imp_cap = split_capacity(self.total_capacity, imp_ratio)
        self.importance = ImportanceView(self, imp_cap)
        self.homophily = HomophilyView(self, self.total_capacity - imp_cap)
        self.stats = CacheStats()
        self.degraded = DegradedStats()
        self.degrade_on: Tuple[type, ...] = ()

        self.n_shards = int(n_shards)
        self._ring = ConsistentHashRing(self.n_shards, vnodes=vnodes, seed=seed)
        if isinstance(transport, str):
            if transport == "sim":
                self._transport: Transport = SimRpcChannel(
                    clock=clock,
                    latency=latency,
                    deadline_s=deadline_s,
                    fault_plans=fault_plans,
                )
            elif transport == "real":
                if latency is not None:
                    raise ValueError(
                        "latency models are a simulation feature; the real "
                        "transport has real latency"
                    )
                if fault_plans:
                    raise ValueError(
                        "fault plans are a simulation feature; use the real "
                        "transport's kill_shard for wall-clock chaos"
                    )
                from repro.dist.transport import RealRpcTransport

                self._transport = RealRpcTransport(
                    clock=clock, deadline_s=deadline_s
                )
            else:
                raise ValueError(
                    f"unknown transport {transport!r}; expected 'sim', "
                    "'real', or a Transport instance"
                )
        else:
            self._transport = transport
        for sid in range(self.n_shards):
            if not self._transport.has_shard(sid):
                self._transport.add_shard(sid)
        self.clock = self._transport.clock
        self.retry = retry if retry is not None else RetryPolicy()
        self._breaker_kwargs = dict(
            failure_threshold=int(breaker_failure_threshold),
            cooldown_s=float(breaker_cooldown_s),
            close_threshold=int(breaker_close_threshold),
        )
        self._breakers: Dict[int, CircuitBreaker] = {
            sid: CircuitBreaker(**self._breaker_kwargs)
            for sid in range(self.n_shards)
        }

        # -- client-side policy state (the logical cache) ----------------
        self._heap = IndexedMinHeap()  # importance scores + tiebreaks
        self._imp_loc: Dict[int, int] = {}  # key -> shard holding payload
        self._hom_entries: "OrderedDict[int, Tuple[int, ...]]" = OrderedDict()
        self._hom_loc: Dict[int, int] = {}
        self._neighbor_of: Dict[int, Set[int]] = {}

        # -- fault-tolerance bookkeeping ---------------------------------
        self._pending_deletes: Dict[int, List[Tuple[str, int]]] = {}
        self._shard_stats: Dict[int, Counter] = defaultdict(Counter)
        self.dropped_admits = 0  # failed payload puts (metadata untouched)
        self.degraded_lookups = 0  # failed payload reads served as misses
        self.rpc_retries = 0
        self._rpc_seq = 0  # deterministic per-request id for jitter

        self.migration_batch_size = int(migration_batch_size)
        self._migration: Optional[MigrationState] = None
        self.completed_resizes = 0
        self._obs = NULL_OBSERVER

    # ------------------------------------------------------------------
    # wiring / introspection
    # ------------------------------------------------------------------
    def attach_observer(self, observer: Observer) -> None:
        """Publish RPC, breaker, and cache activity to ``observer``."""
        self._obs = observer
        self._transport.attach_observer(observer)
        for sid, breaker in self._breakers.items():
            breaker.attach_observer(observer, label=f"shard{sid}")

    @property
    def transport(self) -> Transport:
        return self._transport

    @property
    def channel(self) -> Transport:
        """Back-compat alias for :attr:`transport`."""
        return self._transport

    @property
    def ring(self) -> ConsistentHashRing:
        return self._ring

    @property
    def servers(self) -> Dict[int, CacheShardServer]:
        """In-process server dict (sim transport only; the real
        transport's servers live in other processes)."""
        return self._transport.servers

    @property
    def breakers(self) -> Dict[int, CircuitBreaker]:
        return self._breakers

    @property
    def migration(self) -> Optional[MigrationState]:
        """The in-flight resize, or ``None``."""
        return self._migration

    def set_fault_plan(self, shard: int, plan: Optional[Any]) -> None:
        """Install (or clear) one shard's fault schedule."""
        self._transport.set_fault_plan(shard, plan)

    def _placement_ring(self) -> ConsistentHashRing:
        """Ring governing *new* placements: the migration target while a
        resize is in flight (so fresh admits land where they will end
        up), the active ring otherwise."""
        if self._migration is not None:
            return self._migration.target_ring
        return self._ring

    # ------------------------------------------------------------------
    # RPC machinery
    # ------------------------------------------------------------------
    def _call_with_retries(
        self, shard: int, method: str, *args: Any, nbytes: int = 0
    ) -> Any:
        """One logical request: breaker gate, then up to
        ``retry.max_attempts`` channel attempts with seeded backoff.

        Raises :class:`CircuitOpenError` (fail-fast) or
        :class:`RetryBudgetExhausted`; callers degrade on both.
        """
        shard = int(shard)
        breaker = self._breakers[shard]
        clock = self.clock
        obs = self._obs
        request_id = self._rpc_seq
        self._rpc_seq += 1
        span = (
            obs.span_start(
                "rpc", clock.total_seconds, shard=shard, method=method,
                breaker=breaker.state.value, transport=self._transport.name,
            )
            if obs.active else None
        )
        last: Optional[RpcError] = None
        for attempt in range(self.retry.max_attempts):
            now = clock.total_seconds
            if not breaker.allow(now):
                breaker.fast_failures += 1
                self._shard_stats[shard]["rpc_fast_failures"] += 1
                if span is not None:
                    obs.span_end(
                        span, now, ok=False, error="circuit_open",
                        attempts=attempt,
                    )
                raise CircuitOpenError(
                    f"shard {shard} circuit open at t={now:.3f}s; "
                    f"rejecting {method}"
                )
            try:
                result = self._transport.call(shard, method, *args, nbytes=nbytes)
            except _ATTEMPT_ERRORS as exc:
                last = exc
                breaker.record_failure(clock.total_seconds)
                if attempt + 1 < self.retry.max_attempts:
                    self.rpc_retries += 1
                    self._shard_stats[shard]["rpc_retries"] += 1
                    t0 = clock.total_seconds
                    clock.advance(
                        self._transport.STAGE,
                        self.retry.backoff_s(request_id, attempt),
                    )
                    if obs.active:
                        obs.span_record(
                            "backoff", t0, clock.total_seconds,
                            shard=shard, attempt=attempt,
                        )
                continue
            breaker.record_success(clock.total_seconds)
            if span is not None:
                obs.span_end(
                    span, clock.total_seconds, ok=True, attempts=attempt + 1,
                )
            if self._pending_deletes.get(shard):
                self._flush_pending(shard)
            return result
        if span is not None:
            obs.span_end(
                span, clock.total_seconds, ok=False,
                error="retry_exhausted", attempts=self.retry.max_attempts,
            )
        raise RetryBudgetExhausted(shard, method, self.retry.max_attempts, last)

    def _best_effort_delete(self, shard: int, layer: str, key: int) -> None:
        """Victim/anti-entropy delete: single attempt, never raises.

        Failures park the ``(layer, key)`` pair in the shard's repair
        queue (a timed-out delete *executed* server-side; re-queueing is
        harmless because deletes are idempotent)."""
        shard = int(shard)
        entry = (layer, int(key))
        if not self._transport.has_shard(shard):
            return  # shard retired by a shrink resize; nothing to repair
        breaker = self._breakers.get(shard)
        now = self.clock.total_seconds
        if breaker is not None and not breaker.allow(now):
            self._pending_deletes.setdefault(shard, []).append(entry)
            return
        try:
            self._transport.call(shard, f"{layer}_delete", int(key))
        except _ATTEMPT_ERRORS:
            if breaker is not None:
                breaker.record_failure(self.clock.total_seconds)
            self._pending_deletes.setdefault(shard, []).append(entry)
        else:
            if breaker is not None:
                breaker.record_success(self.clock.total_seconds)

    def _flush_pending(self, shard: int) -> None:
        """Opportunistic anti-entropy: drain a shard's queued deletes
        after a successful call proved it reachable. Entries whose key
        has since legitimately re-landed on that shard are dropped —
        deleting them would destroy a live payload."""
        queue = self._pending_deletes.get(shard)
        if not queue:
            return
        live: List[Tuple[str, int]] = []
        for layer, key in queue:
            loc = self._imp_loc if layer == "imp" else self._hom_loc
            if loc.get(key) == shard:
                continue  # re-resident here; must NOT delete
            live.append((layer, key))
        self._pending_deletes[shard] = []
        if not live:
            return
        obs = self._obs
        span = (
            obs.span_start(
                "anti_entropy", self.clock.total_seconds,
                shard=int(shard), n=len(live),
            )
            if obs.active else None
        )
        repaired = True
        try:
            self._transport.call(shard, "bulk_delete", live)
        except _ATTEMPT_ERRORS:
            repaired = False
            self._pending_deletes[shard] = live + self._pending_deletes[shard]
        if span is not None:
            obs.span_end(span, self.clock.total_seconds, ok=repaired)

    # ------------------------------------------------------------------
    # fetch protocol (Fig. 9, identical decisions to the monolith)
    # ------------------------------------------------------------------
    def fetch(
        self,
        index: int,
        score: float,
        remote_get: Callable[[int], Any],
    ) -> FetchOutcome:
        """Serve one sample request per the Fig. 9 protocol.

        Decision-identical to :meth:`SemanticCache.fetch` in fault-free
        runs; under faults, unreachable payloads degrade each stage to a
        miss and the next stage takes over. With span tracing enabled
        the whole request runs inside a ``fetch`` span — every RPC
        attempt, backoff, breaker rejection, and repair it causes hangs
        off that span in the trace.
        """
        obs = self._obs
        span = (
            obs.span_start(
                "fetch", self.clock.total_seconds, requested_id=int(index)
            )
            if obs.active else None
        )
        if span is None:
            return self._fetch_protocol(index, score, remote_get)
        try:
            out = self._fetch_protocol(index, score, remote_get)
        except BaseException as exc:
            obs.span_end(
                span, self.clock.total_seconds, error=type(exc).__name__
            )
            raise
        obs.span_end(
            span, self.clock.total_seconds,
            served_id=out.served_id, source=out.source.value,
        )
        return out

    def _fetch_protocol(
        self,
        index: int,
        score: float,
        remote_get: Callable[[int], Any],
    ) -> FetchOutcome:
        """The Fig. 9 decision chain (importance -> homophily -> remote)."""
        obs = self._obs
        index = int(index)
        payload = self._importance_get(index)
        if payload is not None:
            self.stats.hits += 1
            if obs.active:
                obs.on_fetch(index, index, FetchSource.IMPORTANCE)
            return FetchOutcome(index, index, payload, FetchSource.IMPORTANCE)

        sub = self._homophily_lookup(index)
        if sub is not None:
            node_key, node_payload = sub
            if node_key == index:
                self.stats.hits += 1
            else:
                self.stats.substitute_hits += 1
            if obs.active:
                obs.on_fetch(index, node_key, FetchSource.HOMOPHILY)
            return FetchOutcome(
                index, node_key, node_payload, FetchSource.HOMOPHILY
            )

        try:
            payload = remote_get(index)
        except self.degrade_on:
            self.degraded.errors_absorbed += 1
            return self._degraded_fetch(index)
        self.stats.misses += 1
        if obs.active:
            obs.on_fetch(index, index, FetchSource.REMOTE)
        self._admit_importance(index, payload, score)
        return FetchOutcome(index, index, payload, FetchSource.REMOTE)

    def _importance_get(self, index: int) -> Optional[Any]:
        """Importance probe: metadata decides, the shard serves.

        A metadata miss is a plain miss (no RPC — exactly the monolith's
        dict probe). A metadata hit whose payload RPC fails degrades to a
        miss and counts ``degraded_lookups``."""
        shard = self._imp_loc.get(index)
        if shard is None:
            self.importance.stats.misses += 1
            return None
        try:
            payload = self._call_with_retries(shard, "imp_get", index)
        except _DEGRADE_ERRORS:
            self.degraded_lookups += 1
            self.importance.stats.misses += 1
            return None
        if payload is None:
            # Shard lost a payload the metadata owns (possible only after
            # invariant-violating external interference); degrade.
            self.degraded_lookups += 1
            self.importance.stats.misses += 1
            return None
        self.importance.stats.hits += 1
        self._shard_stats[shard]["imp_hits"] += 1
        return payload

    def _hom_payload(self, key: int, substitute: bool) -> Optional[Any]:
        """Fetch a homophily node's payload from its shard (None on RPC
        failure — the caller degrades to a miss)."""
        shard = self._hom_loc[key]
        try:
            payload = self._call_with_retries(shard, "hom_get", key, substitute)
        except _DEGRADE_ERRORS:
            self.degraded_lookups += 1
            return None
        if payload is None:
            self.degraded_lookups += 1
            return None
        self._shard_stats[shard][
            "hom_substitute_hits" if substitute else "hom_hits"
        ] += 1
        return payload

    def _homophily_lookup(self, index: int) -> Optional[Tuple[int, Any]]:
        """Homophily probe over the client-side cover map (Fig. 9 case 3);
        serves the most recently inserted covering node, as the monolith
        does."""
        hstats = self.homophily.stats
        if index in self._hom_entries:
            payload = self._hom_payload(index, substitute=False)
            if payload is None:
                hstats.misses += 1
                return None
            hstats.hits += 1
            return index, payload
        covers = self._neighbor_of.get(index)
        if not covers:
            hstats.misses += 1
            return None
        for key in reversed(self._hom_entries):
            if key in covers:
                payload = self._hom_payload(key, substitute=True)
                if payload is None:
                    hstats.misses += 1
                    return None
                hstats.substitute_hits += 1
                if self._obs.active:
                    self._obs.on_audit(
                        "substitute", key, "homophily",
                        requested_id=index, reason="neighbor_cover",
                    )
                return key, payload
        raise AssertionError("neighbor map out of sync with entries")

    # ------------------------------------------------------------------
    # admission / refresh (payload-put-first write ordering)
    # ------------------------------------------------------------------
    def _admit_importance(self, key: int, value: Any, score: float) -> bool:
        """Monolith admission rule with RPC-first durability.

        The payload put must succeed *before* any metadata changes; a
        failed put is counted as a dropped admit and leaves the heap,
        the location map, and every counter exactly as they were."""
        obs = self._obs
        imp = self.importance
        if imp.capacity == 0:
            return False
        if key in self._imp_loc:
            # Already resident: refresh payload and score.
            if not self._shard_put(self._imp_loc[key], "imp_put", key, value):
                return False
            self._heap.update(key, score)
            return True
        if len(self._imp_loc) < imp.capacity:
            shard = self._placement_ring().shard_for(key)
            if not self._shard_put(shard, "imp_put", key, value):
                return False
            self._heap.push(key, score)
            self._imp_loc[key] = shard
            imp.stats.insertions += 1
            if obs.active:
                obs.on_admit(key, score, True, None)
            return True
        if score <= self._heap.min_priority():
            if obs.active:
                obs.on_admit(key, score, False, None)
                obs.on_audit(
                    "drop", key, "importance", score=score,
                    threshold=self._heap.min_priority(),
                    reason="below_min_score",
                )
            return False
        shard = self._placement_ring().shard_for(key)
        if not self._shard_put(shard, "imp_put", key, value):
            return False
        ev_score, evicted = self._heap.pop()
        ev_shard = self._imp_loc.pop(evicted)
        imp.stats.evictions += 1
        self._best_effort_delete(ev_shard, "imp", evicted)
        self._heap.push(key, score)
        self._imp_loc[key] = shard
        imp.stats.insertions += 1
        if obs.active:
            obs.on_admit(key, score, True, evicted)
            obs.on_audit(
                "evict", evicted, "importance", score=ev_score,
                threshold=score, requested_id=key, reason="displaced",
            )
        return True

    def _shard_put(self, shard: int, method: str, key: int, value: Any) -> bool:
        """Payload put with retries; a failure is a *dropped admit*.

        An ambiguously timed-out put may have executed server-side; the
        orphan payload is queued for anti-entropy deletion so shard
        contents reconverge with the metadata."""
        nbytes = int(np.asarray(value).nbytes)
        try:
            self._call_with_retries(shard, method, key, value, nbytes=nbytes)
        except _DEGRADE_ERRORS:
            self.dropped_admits += 1
            self._shard_stats[shard]["dropped_admits"] += 1
            layer = "imp" if method.startswith("imp") else "hom"
            self._pending_deletes.setdefault(shard, []).append((layer, key))
            if self._obs.active:
                self._obs.on_audit(
                    "drop", key,
                    "importance" if layer == "imp" else "homophily",
                    reason="rpc_failed",
                )
            return False
        return True

    def update_homophily(
        self, node_key: int, payload: Any, neighbor_ids: List[int]
    ) -> bool:
        """Per-batch Homophily Cache refresh (FIFO), payload-put-first."""
        obs = self._obs
        span = (
            obs.span_start("put", self.clock.total_seconds, key=int(node_key))
            if obs.active else None
        )
        ok = self._update_homophily_inner(node_key, payload, neighbor_ids)
        if span is not None:
            obs.span_end(span, self.clock.total_seconds, ok=ok)
        return ok

    def _update_homophily_inner(
        self, node_key: int, payload: Any, neighbor_ids: List[int]
    ) -> bool:
        hom = self.homophily
        if hom.capacity == 0:
            return False
        key = int(node_key)
        if key in self._hom_entries:
            return False
        shard = self._placement_ring().shard_for(key)
        if not self._shard_put(shard, "hom_put", key, payload):
            return False
        obs = self._obs
        while len(self._hom_entries) >= hom.capacity:
            self._evict_oldest_hom("fifo")
        neigh = tuple(int(n) for n in neighbor_ids)
        self._hom_entries[key] = neigh
        self._hom_loc[key] = shard
        for n in neigh:
            self._neighbor_of.setdefault(n, set()).add(key)
        hom.stats.insertions += 1
        if obs.active:
            obs.on_homophily_insert(key, len(neigh))
        return True

    def _evict_oldest_hom(self, reason: str) -> int:
        key, neigh = self._hom_entries.popitem(last=False)
        for n in neigh:
            owners = self._neighbor_of.get(n)
            if owners is not None:
                owners.discard(key)
                if not owners:
                    del self._neighbor_of[n]
        shard = self._hom_loc.pop(key)
        self.homophily.stats.evictions += 1
        if self._obs.active:
            self._obs.on_evict("homophily", key, reason)
        self._best_effort_delete(shard, "hom", key)
        return key

    def update_score(self, index: int, score: float) -> None:
        """Propagate a global-score change (pure metadata, no RPC)."""
        if index in self._imp_loc:
            self._heap.update(index, score)

    # ------------------------------------------------------------------
    # elastic split
    # ------------------------------------------------------------------
    @property
    def imp_ratio(self) -> float:
        return self._imp_ratio

    def set_imp_ratio(self, ratio: float) -> None:
        """Rebalance layer capacities (same split/ordering rules as the
        monolith: shrink the losing layer first, then grow the other)."""
        if not 0.0 <= ratio <= 1.0:
            raise ValueError("imp_ratio must be in [0, 1]")
        self._imp_ratio = float(ratio)
        imp_cap = split_capacity(self.total_capacity, ratio)
        hom_cap = self.total_capacity - imp_cap
        if imp_cap < self.importance.capacity:
            self._shrink_importance(imp_cap)
            self.homophily.capacity = hom_cap
        elif imp_cap > self.importance.capacity:
            self._shrink_homophily(hom_cap)
            self.importance.capacity = imp_cap

    def _shrink_importance(self, capacity: int) -> List[int]:
        obs = self._obs
        evicted = []
        while len(self._imp_loc) > capacity:
            _, key = self._heap.pop()
            shard = self._imp_loc.pop(key)
            self.importance.stats.evictions += 1
            if obs.active:
                obs.on_evict("importance", key, "shrink")
            self._best_effort_delete(shard, "imp", key)
            evicted.append(key)
        self.importance.capacity = int(capacity)
        return evicted

    def _shrink_homophily(self, capacity: int) -> List[int]:
        evicted = []
        while len(self._hom_entries) > capacity:
            evicted.append(self._evict_oldest_hom("shrink"))
        self.homophily.capacity = int(capacity)
        return evicted

    # ------------------------------------------------------------------
    # degraded mode
    # ------------------------------------------------------------------
    def enable_degraded_mode(
        self, errors: Optional[Tuple[type, ...]] = None
    ) -> None:
        """Serve degraded instead of raising when ``remote_get`` fails
        (same default error set as the monolith)."""
        if errors is None:
            from repro.resilience.errors import DegradedModeError
            from repro.storage.flaky import TransientFetchError

            errors = (DegradedModeError, TransientFetchError)
        self.degrade_on = tuple(errors)

    def disable_degraded_mode(self) -> None:
        """Restore strict fail-on-error fetch semantics."""
        self.degrade_on = ()

    def _degraded_fetch(self, index: int) -> FetchOutcome:
        """Widened substitution while the remote tier is down.

        Walks homophily entries newest-first until one's payload is
        actually retrievable (fault-free this is exactly the monolith's
        ``newest_entry``), then falls back to the importance minimum,
        then skips — monolith accounting throughout."""
        obs = self._obs
        for key in reversed(self._hom_entries):
            payload = self._neutral_read("hom", key)
            if payload is None:
                continue
            self.stats.degraded_serves += 1
            self.degraded.substituted_homophily += 1
            if obs.active:
                obs.on_degraded(index, key)
                obs.on_fetch(index, key, FetchSource.DEGRADED)
                obs.on_audit(
                    "substitute", key, "homophily",
                    requested_id=index, reason="degraded",
                )
            return FetchOutcome(index, key, payload, FetchSource.DEGRADED)
        if len(self._heap):
            min_score, key = self._heap.peek()
            payload = self._neutral_read("imp", key)
            if payload is not None:
                self.stats.degraded_serves += 1
                self.degraded.substituted_importance += 1
                if obs.active:
                    obs.on_degraded(index, key)
                    obs.on_fetch(index, key, FetchSource.DEGRADED)
                    obs.on_audit(
                        "substitute", key, "importance", score=min_score,
                        requested_id=index, reason="degraded",
                    )
                return FetchOutcome(index, key, payload, FetchSource.DEGRADED)
        self.stats.misses += 1
        self.degraded.skipped += 1
        if obs.active:
            obs.on_degraded(index, None)
            obs.on_fetch(index, index, FetchSource.SKIPPED)
        return FetchOutcome(index, index, None, FetchSource.SKIPPED)

    def _neutral_read(self, layer: str, key: int) -> Optional[Any]:
        """Payload read that does not disturb the shard's hit counters
        (uses the read-only ``migrate_out`` export); None on failure."""
        loc = self._imp_loc if layer == "imp" else self._hom_loc
        shard = loc.get(key)
        if shard is None:
            return None
        try:
            out = self._call_with_retries(shard, "migrate_out", layer, [key])
        except _DEGRADE_ERRORS:
            self.degraded_lookups += 1
            return None
        return out.get(key)

    # ------------------------------------------------------------------
    # live ring resize + key migration
    # ------------------------------------------------------------------
    def resize(
        self, new_shard_count: int, drain: bool = True
    ) -> Optional[MigrationState]:
        """Resize the ring to ``new_shard_count``, migrating keys.

        Grows spin up fresh servers/breakers immediately; the old ring
        stays authoritative for existing keys until their batch lands
        (new admits already target the new ring). With ``drain=True``
        (default) the whole migration runs now; otherwise call
        :meth:`continue_migration` — e.g. once per epoch boundary — to
        drain incrementally. Returns the :class:`MigrationState`, or
        ``None`` for a no-op resize."""
        new_n = int(new_shard_count)
        if new_n < 1:
            raise ValueError("new_shard_count must be >= 1")
        if self._migration is not None and not self._migration.done:
            raise RuntimeError("a ring resize is already in progress")
        old_n = self._ring.n_shards
        if new_n == old_n:
            return None
        for sid in range(old_n, new_n):
            self._transport.add_shard(sid)
            breaker = CircuitBreaker(**self._breaker_kwargs)
            breaker.attach_observer(self._obs, label=f"shard{sid}")
            self._breakers[sid] = breaker
        state = plan_migration(
            old_n,
            self._ring.spawn(new_n),
            {"imp": dict(self._imp_loc), "hom": dict(self._hom_loc)},
            batch_size=self.migration_batch_size,
        )
        self._migration = state
        if self._obs.active:
            self._obs.on_resize(old_n, new_n, state.planned_moves)
        if drain:
            self.continue_migration()
        return state

    def continue_migration(
        self, max_batches: Optional[int] = None
    ) -> Optional[MigrationState]:
        """Drain (part of) the in-flight migration.

        Attempts each pending batch at most once per call; batches that
        fail (outage, open breaker, burned retry budget) rotate to the
        back and stay pending, so a dead shard stalls only its own keys.
        Batch keys are re-validated against live metadata at execution —
        keys evicted or relocated since planning are silently skipped.
        Finalizes the resize (ring swap, retired-server teardown) once
        the queue is empty. Safe to call when no migration is active."""
        state = self._migration
        if state is None:
            return None
        budget = len(state.pending)
        if max_batches is not None:
            budget = min(budget, int(max_batches))
        obs = self._obs
        span = (
            obs.span_start(
                "migration_drain", self.clock.total_seconds,
                pending=len(state.pending),
            )
            if obs.active and budget > 0 else None
        )
        moved_before = state.moved_keys
        while state.pending and budget > 0:
            budget -= 1
            batch = state.pending[0]
            loc = self._imp_loc if batch.layer == "imp" else self._hom_loc
            live = [k for k in batch.keys if loc.get(k) == batch.src]
            if not live:
                state.pending.popleft()  # fully voided by eviction/churn
                continue
            try:
                payloads = self._call_with_retries(
                    batch.src, "migrate_out", batch.layer, live
                )
                entries = {k: payloads[k] for k in live if k in payloads}
                if entries:
                    nbytes = sum(
                        int(np.asarray(v).nbytes) for v in entries.values()
                    )
                    self._call_with_retries(
                        batch.dst, "migrate_in", batch.layer, entries,
                        nbytes=nbytes,
                    )
            except _DEGRADE_ERRORS:
                state.failed_batches += 1
                state.pending.rotate(-1)
                continue
            state.pending.popleft()
            for k in entries:
                loc[k] = batch.dst  # point of no return: reads move over
            state.moved_keys += len(entries)
            if entries:
                try:
                    self._transport.call(
                        batch.src,
                        "bulk_delete",
                        [(batch.layer, k) for k in entries],
                    )
                except _ATTEMPT_ERRORS:
                    self._pending_deletes.setdefault(batch.src, []).extend(
                        (batch.layer, k) for k in entries
                    )
        if span is not None:
            obs.span_end(
                span, self.clock.total_seconds,
                moved=state.moved_keys - moved_before,
                remaining=len(state.pending),
            )
        if state.done:
            self._finalize_migration(state)
        return state

    def _finalize_migration(self, state: MigrationState) -> None:
        old_n = self._ring.n_shards
        self._ring = state.target_ring
        self.n_shards = self._ring.n_shards
        for sid in range(self.n_shards, old_n):
            # Retired shards hold no referenced payloads any more; their
            # queued repairs die with them.
            self._transport.remove_shard(sid)
            self._breakers.pop(sid, None)
            self._pending_deletes.pop(sid, None)
        self.completed_resizes += 1
        self._migration = None

    def verify_placement(self) -> List[Tuple[str, int, int, Optional[int]]]:
        """Rebalance-correctness oracle; returns violations (empty = OK).

        Each violation is ``(layer, key, located_shard, expected_shard)``
        for a key whose location disagrees with the placement ring, or
        ``(layer, key, located_shard, None)`` for a key whose payload is
        missing from the shard its metadata points at. While a migration
        is in flight, not-yet-moved keys legitimately appear as
        ring-disagreement entries."""
        ring = self._placement_ring()
        resident: Dict[Tuple[int, str], Set[int]] = {}
        for sid in self._transport.shard_ids:
            for layer in ("imp", "hom"):
                try:
                    # Control-plane peek: no latency charge, no faults,
                    # no stats — the audit must not perturb the run.
                    keys = self._transport.peek(sid, "keys", layer)
                except _ATTEMPT_ERRORS:
                    # Unreachable shard (real-transport outage): every
                    # payload it held is reported lost, which is true.
                    keys = ()
                resident[(sid, layer)] = set(keys)
        bad: List[Tuple[str, int, int, Optional[int]]] = []
        for layer, loc in (("imp", self._imp_loc), ("hom", self._hom_loc)):
            for key, shard in loc.items():
                expected = ring.shard_for(key)
                if expected != shard:
                    bad.append((layer, key, shard, expected))
                if key not in resident.get((shard, layer), ()):  # lost payload
                    bad.append((layer, key, shard, None))
        return bad

    # ------------------------------------------------------------------
    # snapshots / aggregate accounting
    # ------------------------------------------------------------------
    def shard_snapshots(self) -> List[Dict[str, Any]]:
        """Per-shard service snapshot (pure-local: no RPCs, so snapshots
        work even mid-outage). Consumed by ``Observer.on_shards`` and the
        report's shards table."""
        imp_occ = Counter(self._imp_loc.values())
        hom_occ = Counter(self._hom_loc.values())
        ch = self._transport
        snaps = []
        for sid in sorted(self._transport.shard_ids):
            ss = self._shard_stats[sid]
            snaps.append(
                {
                    "shard": sid,
                    "imp_len": imp_occ.get(sid, 0),
                    "hom_len": hom_occ.get(sid, 0),
                    "imp_hits": ss["imp_hits"],
                    "hom_hits": ss["hom_hits"],
                    "hom_substitute_hits": ss["hom_substitute_hits"],
                    "rpc_calls": ch.per_shard_calls.get(sid, 0),
                    "rpc_failures": ch.per_shard_failures.get(sid, 0)
                    + ch.per_shard_timeouts.get(sid, 0),
                    "rpc_timeouts": ch.per_shard_timeouts.get(sid, 0),
                    "rpc_retries": ss["rpc_retries"],
                    "rpc_fast_failures": ss["rpc_fast_failures"],
                    "dropped_admits": ss["dropped_admits"],
                    "breaker": self._breakers[sid].state.value,
                }
            )
        return snaps

    @property
    def hit_ratio(self) -> float:
        """Total hit ratio including homophily substitutions."""
        return self.stats.hit_ratio

    def __len__(self) -> int:
        return len(self._imp_loc) + len(self._hom_entries)

    def reset_stats(self) -> None:
        """Zero the aggregate and per-layer counters."""
        self.stats.reset()
        self.degraded.reset()
        self.importance.stats.reset()
        self.homophily.stats.reset()

    def close(self) -> None:
        """Release the transport (worker processes in real mode);
        idempotent, no-op for the in-process sim channel."""
        self._transport.close()

    def __enter__(self) -> "ShardedCacheClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # checkpointing (SemanticCache-compatible state_dict)
    # ------------------------------------------------------------------
    def _gather(self, layer: str, keys: List[int]) -> List[np.ndarray]:
        """Collect payloads for ``keys`` via batched read-only exports,
        grouped per owning shard. Raises on RPC failure or a missing
        payload — a checkpoint must be exact or not taken at all."""
        loc = self._imp_loc if layer == "imp" else self._hom_loc
        by_shard: Dict[int, List[int]] = {}
        for k in keys:
            by_shard.setdefault(loc[k], []).append(k)
        out: Dict[int, Any] = {}
        for shard, ks in by_shard.items():
            out.update(self._call_with_retries(shard, "migrate_out", layer, ks))
        missing = [k for k in keys if k not in out]
        if missing:
            raise RuntimeError(
                f"shard tier lost {len(missing)} {layer} payload(s) "
                f"(e.g. key {missing[0]}); cannot snapshot"
            )
        return [np.asarray(out[k]) for k in keys]

    def state_dict(self) -> dict:
        """Exact SemanticCache-format snapshot (payloads gathered from
        the shards). Bit-identical to the monolith's after the same
        fault-free workload — the differential oracle's equality check."""
        imp_keys = list(self._imp_loc)
        imp_payloads = (
            np.stack(self._gather("imp", imp_keys))
            if imp_keys
            else np.empty((0,))
        )
        hom_keys = list(self._hom_entries)
        hom_payloads = (
            np.stack(self._gather("hom", hom_keys))
            if hom_keys
            else np.empty((0,))
        )
        return {
            "total_capacity": self.total_capacity,
            "imp_ratio": self._imp_ratio,
            "stats": self.stats.state_dict(),
            "degraded": self.degraded.state_dict(),
            "importance": {
                "capacity": self.importance.capacity,
                "keys": np.asarray(imp_keys, dtype=np.int64),
                "payloads": imp_payloads,
                "heap": self._heap.state_dict(),
                "stats": self.importance.stats.state_dict(),
            },
            "homophily": {
                "capacity": self.homophily.capacity,
                "keys": np.asarray(hom_keys, dtype=np.int64),
                "payloads": hom_payloads,
                "neighbors": [list(self._hom_entries[k]) for k in hom_keys],
                "stats": self.homophily.stats.state_dict(),
            },
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot: rebuild metadata, re-place every payload
        per the current ring. Raises if the shard tier is unreachable —
        a restore must be complete or not happen."""
        if int(state["total_capacity"]) != self.total_capacity:
            raise ValueError("sharded-cache snapshot capacity mismatch")
        # Drop current residents first (best-effort; leftovers become
        # orphans that anti-entropy or overwrites clean up).
        stale: Dict[int, List[Tuple[str, int]]] = {}
        for layer, loc in (("imp", self._imp_loc), ("hom", self._hom_loc)):
            for k, s in loc.items():
                stale.setdefault(s, []).append((layer, k))
        for shard, entries in stale.items():
            try:
                self._transport.call(shard, "bulk_delete", entries)
            except _ATTEMPT_ERRORS:
                self._pending_deletes.setdefault(shard, []).extend(entries)

        self._imp_ratio = float(state["imp_ratio"])
        self.stats.load_state_dict(state["stats"])
        self.degraded.load_state_dict(state["degraded"])
        ring = self._placement_ring()

        imp = state["importance"]
        self.importance.capacity = int(imp["capacity"])
        self.importance.stats.load_state_dict(imp["stats"])
        self._heap.load_state_dict(imp["heap"])
        imp_keys = [int(k) for k in np.asarray(imp["keys"], dtype=np.int64)]
        payloads = imp["payloads"]
        self._imp_loc = {}
        placed: Dict[int, Dict[int, Any]] = {}
        for i, k in enumerate(imp_keys):
            shard = ring.shard_for(k)
            self._imp_loc[k] = shard
            placed.setdefault(shard, {})[k] = np.asarray(payloads[i])
        if set(self._heap.keys()) != set(self._imp_loc):
            raise ValueError("sharded-cache snapshot heap/location mismatch")
        for shard, entries in placed.items():
            self._call_with_retries(shard, "migrate_in", "imp", entries)

        hom = state["homophily"]
        self.homophily.capacity = int(hom["capacity"])
        self.homophily.stats.load_state_dict(hom["stats"])
        hom_keys = [int(k) for k in np.asarray(hom["keys"], dtype=np.int64)]
        neighbors = hom["neighbors"]
        if len(hom_keys) != len(neighbors):
            raise ValueError("sharded-cache snapshot keys/neighbors mismatch")
        payloads = hom["payloads"]
        self._hom_entries = OrderedDict()
        self._hom_loc = {}
        self._neighbor_of = {}
        placed = {}
        for i, k in enumerate(hom_keys):
            neigh = tuple(int(n) for n in neighbors[i])
            self._hom_entries[k] = neigh
            shard = ring.shard_for(k)
            self._hom_loc[k] = shard
            for n in neigh:
                self._neighbor_of.setdefault(n, set()).add(k)
            placed.setdefault(shard, {})[k] = np.asarray(payloads[i])
        for shard, entries in placed.items():
            self._call_with_retries(shard, "migrate_in", "hom", entries)
