"""Retry discipline for cache-protocol RPCs.

A :class:`RetryPolicy` gives every logical request a bounded **retry
budget** and a **capped exponential backoff** schedule with *seeded*
jitter: the jitter for attempt ``a`` of request ``r`` is a pure function
of ``(seed, r, a)`` via splitmix64, so retry timing is fully
deterministic per run — the property the differential oracle and the
backoff-schedule tests rely on — while still decorrelating concurrent
retriers the way random jitter does in production systems.

Backoff waits are charged to the RPC stage of the shared simulated
clock: a request that burns its budget during an outage visibly costs
``attempts x deadline + sum(backoffs)`` of simulated time, which is
exactly the stall the circuit breaker exists to cut short.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.dist.ring import splitmix64
from repro.dist.rpc import RpcError

__all__ = ["RetryPolicy", "RetryBudgetExhausted"]


class RetryBudgetExhausted(RpcError):
    """Every attempt of a logical request failed; the caller degrades."""

    def __init__(self, shard: int, method: str, attempts: int,
                 last: RpcError) -> None:
        super().__init__(
            shard, method,
            f"retry budget exhausted after {attempts} attempt(s): {last}",
        )
        self.attempts = int(attempts)
        self.last = last


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic seeded jitter.

    Parameters
    ----------
    max_attempts:
        Total attempts per logical request, the first included (so the
        retry budget is ``max_attempts - 1``). ``1`` disables retries.
    backoff_base_s / backoff_multiplier / backoff_cap_s:
        Attempt ``a`` (0-based) waits
        ``min(cap, base * multiplier**a)`` before attempt ``a+1``,
        scaled by jitter.
    jitter:
        Fraction of each wait that is randomized: the wait is drawn
        uniformly from ``[(1 - jitter) * d, d]``. ``0`` disables jitter.
    seed:
        Jitter-stream seed; same seed => same schedule, bit for bit.
    """

    max_attempts: int = 3
    backoff_base_s: float = 1e-3
    backoff_multiplier: float = 2.0
    backoff_cap_s: float = 0.05
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff times must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    # ------------------------------------------------------------------
    def backoff_s(self, request_id: int, attempt: int) -> float:
        """Wait before retrying ``attempt + 1`` of request ``request_id``.

        Deterministic: a pure function of ``(seed, request_id, attempt)``.
        """
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        raw = min(
            self.backoff_cap_s,
            self.backoff_base_s * self.backoff_multiplier ** attempt,
        )
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        h = splitmix64(splitmix64(self.seed ^ int(request_id)) ^ int(attempt))
        u = h / float(1 << 64)  # uniform in [0, 1)
        return raw * (1.0 - self.jitter * u)

    def schedule(self, request_id: int) -> List[float]:
        """The full backoff schedule one request would follow if every
        attempt failed (``max_attempts - 1`` waits)."""
        return [
            self.backoff_s(request_id, a) for a in range(self.max_attempts - 1)
        ]
