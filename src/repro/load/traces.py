"""Deterministic, seeded access-trace generators.

The load harness evaluates the shard tier the way the semantic-caching
literature does: by replaying *skewed, bursty* request streams rather
than uniform synthetic ops. This module generates those streams as
:class:`LoadTrace` objects — flat numpy arrays of keys, ops, scores, and
arrival timestamps — at the 1e5–1e6 request scale, fully reproducible
from a single integer seed.

Three axes compose independently:

* **key popularity** — :func:`zipfian_keys` draws keys from a Zipf(s)
  distribution over a seeded permutation of the keyspace, so hot keys
  are spread across the consistent-hash ring instead of clustering at
  low ids;
* **arrival process** — :class:`ConstantArrivals`,
  :class:`BurstyArrivals` (Markov-modulated on/off rates), and
  :class:`DiurnalArrivals` (sinusoidal rate modulation), plus
  :class:`ModulatedArrivals` to multiply a diurnal envelope onto any
  base process. All sample a non-homogeneous Poisson process exactly,
  by inverting the piecewise-linear cumulative hazard — no thinning, no
  rejection, so the same seed always yields the same arrivals;
* **op mix** — each request is a GET (cache fetch with an importance
  score) or a PUT (homophily insert), drawn per-request from
  ``put_fraction``.

:func:`mix_traces` merges any number of traces by arrival time
(stable), preserving the total request count — the composable mixer for
multi-tenant-style workloads.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.utils.rng import RngLike, resolve_rng, spawn_rngs

__all__ = [
    "OP_GET",
    "OP_PUT",
    "LoadTrace",
    "TraceConfig",
    "ArrivalProcess",
    "ConstantArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "ModulatedArrivals",
    "zipfian_keys",
    "top_k_mass",
    "expected_top_k_mass",
    "make_trace",
    "mix_traces",
]

#: Request op codes (uint8 in the trace arrays).
OP_GET = 0
OP_PUT = 1


# ----------------------------------------------------------------------
# trace container
# ----------------------------------------------------------------------
@dataclass(frozen=True, eq=False)
class LoadTrace:
    """One replayable access trace (parallel arrays, one row per request).

    ``arrival_s`` is nondecreasing simulated time; ``keys`` are sample
    ids in ``[0, n_keys)``; ``ops`` are :data:`OP_GET`/:data:`OP_PUT`;
    ``scores`` are the importance scores GETs carry into the cache
    protocol. ``meta`` records generator provenance (seed, skew, rates)
    for run artifacts.
    """

    keys: np.ndarray
    ops: np.ndarray
    scores: np.ndarray
    arrival_s: np.ndarray
    n_keys: int
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        n = len(self.keys)
        if not (len(self.ops) == len(self.scores) == len(self.arrival_s) == n):
            raise ValueError("trace arrays must have equal length")
        if self.n_keys < 1:
            raise ValueError("n_keys must be >= 1")
        if n:
            if np.any(np.diff(self.arrival_s) < 0):
                raise ValueError("arrival_s must be nondecreasing")
            if self.keys.min() < 0 or self.keys.max() >= self.n_keys:
                raise ValueError("keys must lie in [0, n_keys)")

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def duration_s(self) -> float:
        """Span of the arrival timeline (0 for empty traces)."""
        if not len(self):
            return 0.0
        return float(self.arrival_s[-1] - self.arrival_s[0])

    @property
    def offered_rps(self) -> float:
        """Mean offered request rate over the trace's duration."""
        dur = self.duration_s
        return len(self) / dur if dur > 0 else 0.0

    def checksum(self) -> str:
        """Content hash — bit-identical traces have equal checksums."""
        h = hashlib.sha256()
        h.update(str(self.n_keys).encode())
        for arr in (self.keys, self.ops, self.scores, self.arrival_s):
            h.update(np.ascontiguousarray(arr).tobytes())
        return h.hexdigest()[:16]

    # -- persistence ----------------------------------------------------
    def save(self, path: Union[str, Path]) -> Path:
        """Write the trace as an ``.npz`` archive (meta as JSON)."""
        path = Path(path)
        np.savez_compressed(
            path,
            keys=self.keys,
            ops=self.ops,
            scores=self.scores,
            arrival_s=self.arrival_s,
            n_keys=np.int64(self.n_keys),
            meta=np.frombuffer(
                json.dumps(self.meta, sort_keys=True).encode(), dtype=np.uint8
            ),
        )
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "LoadTrace":
        """Read a trace written by :meth:`save`."""
        with np.load(Path(path), allow_pickle=False) as z:
            meta = json.loads(bytes(z["meta"].tobytes()).decode())
            return cls(
                keys=z["keys"],
                ops=z["ops"],
                scores=z["scores"],
                arrival_s=z["arrival_s"],
                n_keys=int(z["n_keys"]),
                meta=meta,
            )


# ----------------------------------------------------------------------
# key popularity
# ----------------------------------------------------------------------
def zipfian_keys(
    n_requests: int, n_keys: int, exponent: float, rng: RngLike = None
) -> np.ndarray:
    """Draw ``n_requests`` keys with Zipf(``exponent``) popularity.

    Rank ``r`` (1-based) has probability proportional to ``r**-exponent``;
    ``exponent=0`` is uniform. Ranks are mapped to key ids through a
    seeded permutation so the hot set is spread over the keyspace (and
    therefore over the consistent-hash ring).
    """
    if n_requests < 0:
        raise ValueError("n_requests must be >= 0")
    if n_keys < 1:
        raise ValueError("n_keys must be >= 1")
    if exponent < 0:
        raise ValueError("exponent must be >= 0")
    rng = resolve_rng(rng)
    weights = np.arange(1, n_keys + 1, dtype=np.float64) ** -float(exponent)
    p = weights / weights.sum()
    ranks = rng.choice(n_keys, size=int(n_requests), p=p)
    perm = rng.permutation(n_keys)
    return perm[ranks].astype(np.int64)


def top_k_mass(keys: np.ndarray, k: int) -> float:
    """Fraction of requests landing on the ``k`` most frequent keys."""
    if len(keys) == 0:
        return 0.0
    counts = np.bincount(np.asarray(keys, dtype=np.int64))
    top = np.sort(counts)[::-1][: max(int(k), 0)]
    return float(top.sum()) / float(len(keys))


def expected_top_k_mass(n_keys: int, exponent: float, k: int) -> float:
    """Theoretical top-``k`` probability mass of Zipf(``exponent``)."""
    weights = np.arange(1, n_keys + 1, dtype=np.float64) ** -float(exponent)
    p = np.sort(weights / weights.sum())[::-1]
    return float(p[: max(int(k), 0)].sum())


# ----------------------------------------------------------------------
# arrival processes (exact non-homogeneous Poisson sampling)
# ----------------------------------------------------------------------
def _sample_from_segments(
    segments: Iterator[Tuple[float, float]], targets: np.ndarray
) -> np.ndarray:
    """Invert a piecewise-linear cumulative hazard at ``targets``.

    ``segments`` yields ``(duration_s, rate)`` pieces with strictly
    positive rate; the cumulative hazard Λ(t) is piecewise linear over
    them, so arrival times are exactly ``Λ⁻¹`` of the cumulative
    exponential(1) targets — evaluated with ``np.interp``.
    """
    if len(targets) == 0:
        return np.empty(0, dtype=np.float64)
    need = float(targets[-1])
    t_nodes: List[float] = [0.0]
    h_nodes: List[float] = [0.0]
    t = 0.0
    h = 0.0
    for dur, rate in segments:
        if rate <= 0 or dur <= 0:
            raise ValueError("segments need positive duration and rate")
        t += dur
        h += dur * rate
        t_nodes.append(t)
        h_nodes.append(h)
        if h >= need:
            return np.interp(targets, h_nodes, t_nodes)
    raise RuntimeError("arrival segments exhausted before the trace filled")


class ArrivalProcess:
    """Base class: a rate envelope plus exact Poisson arrival sampling.

    Subclasses implement :meth:`_segments` (an iterator of
    ``(duration_s, rate)`` pieces, drawn from the rng where the process
    is stochastic) and expose ``min_rate``/``max_rate`` — the hard
    envelope the instantaneous rate never leaves, which the property
    suite checks.
    """

    min_rate: float
    max_rate: float

    def _segments(self, rng: np.random.Generator) -> Iterator[Tuple[float, float]]:
        raise NotImplementedError

    def sample_arrivals(self, n: int, rng: RngLike = None) -> np.ndarray:
        """Draw ``n`` nondecreasing arrival times (seconds from 0).

        Deterministic given the rng: exponential(1) hazard targets are
        drawn first, then any stochastic envelope pieces, so the same
        seed always produces the same trace.
        """
        if n < 0:
            raise ValueError("n must be >= 0")
        rng = resolve_rng(rng)
        targets = np.cumsum(rng.exponential(1.0, size=int(n)))
        return _sample_from_segments(self._segments(rng), targets)

    def describe(self) -> Dict[str, Any]:
        """JSON-safe provenance for trace meta."""
        return {"kind": type(self).__name__}


class ConstantArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals at a fixed rate (requests/second)."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = float(rate)
        self.min_rate = self.rate
        self.max_rate = self.rate

    def _segments(self, rng: np.random.Generator) -> Iterator[Tuple[float, float]]:
        chunk = 1024.0 / self.rate  # ~1024 expected arrivals per piece
        while True:
            yield (chunk, self.rate)

    def describe(self) -> Dict[str, Any]:
        return {"kind": "constant", "rate": self.rate}


class BurstyArrivals(ArrivalProcess):
    """Markov-modulated on/off arrivals (exponential phase durations).

    Alternates ON phases at ``rate_high`` (mean length ``mean_on_s``)
    with OFF phases at ``rate_low`` (mean ``mean_off_s``), starting ON.
    The instantaneous rate is always in ``[rate_low, rate_high]``.
    """

    def __init__(
        self,
        rate_low: float,
        rate_high: float,
        mean_on_s: float,
        mean_off_s: float,
    ) -> None:
        if rate_low <= 0 or rate_high <= 0:
            raise ValueError("rates must be positive")
        if rate_high < rate_low:
            raise ValueError("rate_high must be >= rate_low")
        if mean_on_s <= 0 or mean_off_s <= 0:
            raise ValueError("phase means must be positive")
        self.rate_low = float(rate_low)
        self.rate_high = float(rate_high)
        self.mean_on_s = float(mean_on_s)
        self.mean_off_s = float(mean_off_s)
        self.min_rate = self.rate_low
        self.max_rate = self.rate_high

    def _segments(self, rng: np.random.Generator) -> Iterator[Tuple[float, float]]:
        while True:
            yield (float(rng.exponential(self.mean_on_s)) + 1e-9, self.rate_high)
            yield (float(rng.exponential(self.mean_off_s)) + 1e-9, self.rate_low)

    def describe(self) -> Dict[str, Any]:
        return {
            "kind": "bursty",
            "rate_low": self.rate_low,
            "rate_high": self.rate_high,
            "mean_on_s": self.mean_on_s,
            "mean_off_s": self.mean_off_s,
        }


class DiurnalArrivals(ArrivalProcess):
    """Sinusoidal rate modulation: ``base * (1 + amp * sin(2πt/period))``.

    ``amplitude`` must be in ``[0, 1)`` so the rate stays positive; the
    envelope is ``[base*(1-amp), base*(1+amp)]``. The continuous rate is
    discretized to ``period_s / 256`` steps for hazard inversion.
    """

    STEPS_PER_PERIOD = 256

    def __init__(
        self, base_rate: float, amplitude: float, period_s: float
    ) -> None:
        if base_rate <= 0:
            raise ValueError("base_rate must be positive")
        if not 0.0 <= amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.base_rate = float(base_rate)
        self.amplitude = float(amplitude)
        self.period_s = float(period_s)
        self.min_rate = self.base_rate * (1.0 - self.amplitude)
        self.max_rate = self.base_rate * (1.0 + self.amplitude)

    def rate_at(self, t: float) -> float:
        """Instantaneous configured rate at time ``t``."""
        return self.base_rate * (
            1.0 + self.amplitude * np.sin(2.0 * np.pi * t / self.period_s)
        )

    def _segments(self, rng: np.random.Generator) -> Iterator[Tuple[float, float]]:
        dt = self.period_s / self.STEPS_PER_PERIOD
        t = 0.0
        while True:
            yield (dt, float(self.rate_at(t + dt / 2.0)))
            t += dt

    def describe(self) -> Dict[str, Any]:
        return {
            "kind": "diurnal",
            "base_rate": self.base_rate,
            "amplitude": self.amplitude,
            "period_s": self.period_s,
        }


class ModulatedArrivals(ArrivalProcess):
    """Multiply a diurnal envelope onto any base arrival process.

    The base's segments are subdivided to the diurnal discretization
    step and each piece's rate is scaled by
    ``1 + amplitude * sin(2πt/period)`` — e.g. bursty traffic whose
    burst *and* idle rates both swing through a daily cycle.
    """

    def __init__(
        self, base: ArrivalProcess, amplitude: float, period_s: float
    ) -> None:
        if not 0.0 <= amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.base = base
        self.amplitude = float(amplitude)
        self.period_s = float(period_s)
        self.min_rate = base.min_rate * (1.0 - self.amplitude)
        self.max_rate = base.max_rate * (1.0 + self.amplitude)

    def _factor(self, t: float) -> float:
        return 1.0 + self.amplitude * float(
            np.sin(2.0 * np.pi * t / self.period_s)
        )

    def _segments(self, rng: np.random.Generator) -> Iterator[Tuple[float, float]]:
        dt = self.period_s / DiurnalArrivals.STEPS_PER_PERIOD
        t = 0.0
        for dur, rate in self.base._segments(rng):
            left = dur
            while left > 0:
                piece = min(left, dt)
                yield (piece, rate * self._factor(t + piece / 2.0))
                t += piece
                left -= piece

    def describe(self) -> Dict[str, Any]:
        return {
            "kind": "modulated",
            "base": self.base.describe(),
            "amplitude": self.amplitude,
            "period_s": self.period_s,
        }


# ----------------------------------------------------------------------
# trace generation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TraceConfig:
    """Shape of one generated trace (key skew + op mix; arrivals are a
    separate :class:`ArrivalProcess` so the axes compose freely)."""

    n_requests: int
    n_keys: int
    zipf_exponent: float = 1.1
    put_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.n_requests < 0:
            raise ValueError("n_requests must be >= 0")
        if self.n_keys < 1:
            raise ValueError("n_keys must be >= 1")
        if self.zipf_exponent < 0:
            raise ValueError("zipf_exponent must be >= 0")
        if not 0.0 <= self.put_fraction < 1.0:
            raise ValueError("put_fraction must be in [0, 1)")


def make_trace(
    config: TraceConfig,
    arrivals: ArrivalProcess,
    seed: RngLike = 0,
) -> LoadTrace:
    """Generate one trace: zipfian keys + op mix over an arrival process.

    Every stochastic draw comes from independent children of ``seed``
    (``spawn_rngs``), so the same seed is bit-identical regardless of
    how any one stream is consumed internally.
    """
    key_rng, op_rng, score_rng, arr_rng = spawn_rngs(seed, 4)
    n = config.n_requests
    keys = zipfian_keys(n, config.n_keys, config.zipf_exponent, key_rng)
    ops = (op_rng.random(n) < config.put_fraction).astype(np.uint8)
    # Lognormal scores: the skewed importance distribution the paper's
    # IS sampling produces (most samples cheap, a heavy useful tail).
    scores = score_rng.lognormal(mean=0.0, sigma=1.0, size=n) + 0.05
    arrival_s = arrivals.sample_arrivals(n, arr_rng)
    seed_meta: Any = seed if isinstance(seed, (int, np.integer)) else None
    return LoadTrace(
        keys=keys,
        ops=ops,
        scores=scores,
        arrival_s=arrival_s,
        n_keys=config.n_keys,
        meta={
            "seed": None if seed_meta is None else int(seed_meta),
            "n_requests": int(n),
            "n_keys": int(config.n_keys),
            "zipf_exponent": float(config.zipf_exponent),
            "put_fraction": float(config.put_fraction),
            "arrivals": arrivals.describe(),
        },
    )


def mix_traces(traces: Sequence[LoadTrace]) -> LoadTrace:
    """Merge traces by arrival time (stable), preserving every request.

    Ties are broken by input position (earlier trace first), so mixing
    is deterministic. The mixed keyspace is the max of the inputs'.
    """
    traces = [t for t in traces if len(t)]
    if not traces:
        raise ValueError("need at least one non-empty trace")
    keys = np.concatenate([t.keys for t in traces])
    ops = np.concatenate([t.ops for t in traces])
    scores = np.concatenate([t.scores for t in traces])
    arrival = np.concatenate([t.arrival_s for t in traces])
    which = np.concatenate(
        [np.full(len(t), i, dtype=np.int64) for i, t in enumerate(traces)]
    )
    pos = np.concatenate(
        [np.arange(len(t), dtype=np.int64) for t in traces]
    )
    order = np.lexsort((pos, which, arrival))  # arrival is primary
    return LoadTrace(
        keys=keys[order],
        ops=ops[order],
        scores=scores[order],
        arrival_s=arrival[order],
        n_keys=max(t.n_keys for t in traces),
        meta={"mixed": [t.meta for t in traces]},
    )
