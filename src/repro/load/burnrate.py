"""Multi-window SLO burn-rate alerting over replay windows.

The SRE-workbook alerting strategy: instead of paging on instantaneous
SLO misses (noisy) or on monthly budget exhaustion (too late), watch how
fast the error budget *burns*. With an SLO goal ``g`` the error budget
is ``1 - g``; a window attaining ``a`` burns at rate

    burn = (1 - a) / (1 - g)

(1.0 = exactly on budget; 10.0 = burning ten budgets' worth). A rule
fires when the burn rate over a *long* lookback **and** a *short*
confirmation lookback both exceed its threshold — the long window gives
significance, the short one makes the alert resolve promptly once the
incident ends. Two default rules give the classic fast/slow pair:

* ``fast`` — short lookbacks, high threshold: page-worthy incidents
  (an outage torching the budget) within a couple of windows.
* ``slow`` — long lookbacks, low threshold: sustained degradation that
  would quietly exhaust the budget over the run.

All lookbacks are measured in replay windows (the harness's batching
unit) and averages are request-weighted, so partial final windows don't
skew the rate. Evaluation is pure arithmetic over recorded attainments —
deterministic, like everything else in the harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

__all__ = [
    "BurnRateRule",
    "AlertEvent",
    "BurnRateEvaluator",
    "DEFAULT_BURN_RULES",
    "burn_rate",
]

#: Budget floor guarding division for a goal of exactly 1.0 (any miss
#: then burns at this huge-but-finite rate instead of dividing by zero).
_MIN_BUDGET = 1e-9


def burn_rate(attainment: float, goal: float) -> float:
    """Error-budget consumption multiple for one attainment sample."""
    return (1.0 - float(attainment)) / max(1.0 - float(goal), _MIN_BUDGET)


@dataclass(frozen=True)
class BurnRateRule:
    """One multi-window burn-rate alert rule.

    Fires when the request-weighted mean burn rate over the last
    ``long_windows`` *and* the last ``short_windows`` both reach
    ``threshold``; resolves when the short lookback falls back under.
    """

    name: str
    long_windows: int
    short_windows: int
    threshold: float

    def __post_init__(self) -> None:
        if self.long_windows < 1 or self.short_windows < 1:
            raise ValueError("lookbacks must be >= 1 window")
        if self.short_windows > self.long_windows:
            raise ValueError("short lookback must not exceed the long one")
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe dict (keys match the ``load.json`` schema)."""
        return {
            "name": self.name,
            "long_windows": self.long_windows,
            "short_windows": self.short_windows,
            "threshold": self.threshold,
        }


#: The classic fast/slow pair, scaled to replay windows.
DEFAULT_BURN_RULES: Tuple[BurnRateRule, ...] = (
    BurnRateRule("fast", long_windows=4, short_windows=1, threshold=10.0),
    BurnRateRule("slow", long_windows=12, short_windows=3, threshold=2.0),
)


@dataclass(frozen=True)
class AlertEvent:
    """One alert state transition (``firing`` or ``resolved``)."""

    rule: str
    state: str  # "firing" | "resolved"
    window: int  # 0-based window index of the transition
    burn_short: float
    burn_long: float
    threshold: float

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe dict (keys match the ``load.json`` schema)."""
        return {
            "rule": self.rule,
            "state": self.state,
            "window": self.window,
            "burn_short": self.burn_short,
            "burn_long": self.burn_long,
            "threshold": self.threshold,
        }


class BurnRateEvaluator:
    """Streams window attainments through a set of burn-rate rules.

    Feed each closed window via :meth:`observe`; transitions come back
    as :class:`AlertEvent` lists (empty when nothing changed state).
    Early windows evaluate over however much history exists — a sim run
    is short, and a fleet-melting first window should still page.
    """

    def __init__(
        self,
        goal: float,
        rules: Sequence[BurnRateRule] = DEFAULT_BURN_RULES,
    ) -> None:
        if not 0.0 < goal <= 1.0:
            raise ValueError("goal must be in (0, 1]")
        self.goal = float(goal)
        self.rules = tuple(rules)
        self._burns: List[float] = []  # per-window burn rates
        self._weights: List[int] = []  # per-window request counts
        self._firing: Dict[str, bool] = {r.name: False for r in self.rules}
        self.events: List[AlertEvent] = []
        self.max_burn: Dict[str, float] = {r.name: 0.0 for r in self.rules}

    def _lookback(self, n_windows: int) -> float:
        """Request-weighted mean burn over the trailing ``n_windows``."""
        burns = self._burns[-n_windows:]
        weights = self._weights[-n_windows:]
        total = sum(weights)
        if total == 0:
            return 0.0
        return sum(b * w for b, w in zip(burns, weights)) / total

    def observe(self, window: int, attainment: float, n: int) -> List[AlertEvent]:
        """Record one closed window; returns any rule transitions."""
        self._burns.append(burn_rate(attainment, self.goal))
        self._weights.append(int(n))
        out: List[AlertEvent] = []
        for rule in self.rules:
            burn_long = self._lookback(rule.long_windows)
            burn_short = self._lookback(rule.short_windows)
            self.max_burn[rule.name] = max(
                self.max_burn[rule.name], burn_long
            )
            was_firing = self._firing[rule.name]
            if not was_firing:
                should = (
                    burn_long >= rule.threshold
                    and burn_short >= rule.threshold
                )
            else:
                should = burn_short >= rule.threshold
            if should != was_firing:
                self._firing[rule.name] = should
                out.append(AlertEvent(
                    rule=rule.name,
                    state="firing" if should else "resolved",
                    window=int(window),
                    burn_short=burn_short,
                    burn_long=burn_long,
                    threshold=rule.threshold,
                ))
        self.events.extend(out)
        return out

    def firing(self) -> List[str]:
        """Names of rules currently in the firing state."""
        return [r.name for r in self.rules if self._firing[r.name]]

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe alerting summary (the ``load.json`` schema)."""
        return {
            "goal": self.goal,
            "rules": [r.as_dict() for r in self.rules],
            "events": [e.as_dict() for e in self.events],
            "max_burn": {k: self.max_burn[k] for k in sorted(self.max_burn)},
            "firing": self.firing(),
        }
