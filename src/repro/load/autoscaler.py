"""Shard-fleet autoscaler: hysteresis on tail latency and queue pressure.

The autoscaler is a pure decision function over per-window service
summaries (:class:`~repro.load.slo.WindowStats`): the replay harness
feeds it one observation per window and executes whatever
:class:`ScaleDecision` comes back (``ShardedCacheClient.resize`` +
incremental ``continue_migration`` drains). Keeping it side-effect-free
makes every rule unit-testable without a cache tier.

Three signals, three guards against flapping:

* **signals** — windowed p99 latency, utilization (offered rate per
  shard vs the configured service rate — the queue-pressure proxy), and
  optionally per-shard key occupancy;
* **hysteresis band** — grow above ``p99_high_s``/``util_high``, shrink
  only below the *separate, lower* ``p99_low_s``/``util_low``, so a
  fleet sized just right sits still;
* **streaks + cooldown** — a breach must persist for
  ``breach_windows`` consecutive windows to trigger, and after any
  decision the scaler sleeps ``cooldown_windows`` windows (migrations
  in flight also block new decisions).

Decisions are multiplicative (``growth_factor``), clamped to
``[min_shards, max_shards]`` — the classic doubling/halving ladder, so
a burst is absorbed in O(log K) windows instead of K.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.load.slo import WindowStats

__all__ = ["AutoscalerConfig", "ScaleDecision", "Autoscaler"]


@dataclass(frozen=True)
class AutoscalerConfig:
    """Thresholds, hysteresis, and cooldown for :class:`Autoscaler`."""

    min_shards: int = 1
    max_shards: int = 8
    p99_high_s: float = 8e-3  # grow when windowed p99 exceeds this
    p99_low_s: float = 3e-3  # shrink only when p99 is under this
    util_high: float = 0.85  # grow when offered/(shards*svc_rate) exceeds
    util_low: float = 0.30  # shrink only when utilization is under this
    occ_high: Optional[float] = None  # per-shard occupancy grow signal
    target_keys_per_shard: Optional[int] = None  # occupancy denominator
    breach_windows: int = 2  # consecutive breaches before acting
    cooldown_windows: int = 3  # windows to sleep after any decision
    growth_factor: float = 2.0  # multiplicative grow / shrink step

    def __post_init__(self) -> None:
        if self.min_shards < 1 or self.max_shards < self.min_shards:
            raise ValueError("need 1 <= min_shards <= max_shards")
        if self.p99_high_s <= 0 or self.p99_low_s <= 0:
            raise ValueError("p99 thresholds must be positive")
        if self.p99_low_s >= self.p99_high_s:
            raise ValueError("p99_low_s must be < p99_high_s (hysteresis band)")
        if self.util_high <= 0 or self.util_low < 0:
            raise ValueError("utilization thresholds must be non-negative")
        if self.util_low >= self.util_high:
            raise ValueError("util_low must be < util_high (hysteresis band)")
        if (self.occ_high is None) != (self.target_keys_per_shard is None):
            raise ValueError(
                "occ_high and target_keys_per_shard must be set together"
            )
        if self.target_keys_per_shard is not None and self.target_keys_per_shard < 1:
            raise ValueError("target_keys_per_shard must be >= 1")
        if self.breach_windows < 1 or self.cooldown_windows < 0:
            raise ValueError("breach_windows >= 1 and cooldown_windows >= 0")
        if self.growth_factor <= 1.0:
            raise ValueError("growth_factor must be > 1")

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe dict (keys match the ``load.json`` schema)."""
        return {
            "min_shards": self.min_shards,
            "max_shards": self.max_shards,
            "p99_high_s": self.p99_high_s,
            "p99_low_s": self.p99_low_s,
            "util_high": self.util_high,
            "util_low": self.util_low,
            "occ_high": self.occ_high,
            "target_keys_per_shard": self.target_keys_per_shard,
            "breach_windows": self.breach_windows,
            "cooldown_windows": self.cooldown_windows,
            "growth_factor": self.growth_factor,
        }


@dataclass(frozen=True)
class ScaleDecision:
    """One resize the autoscaler asked for (action ∈ {grow, shrink})."""

    window: int
    action: str
    old_n: int
    new_n: int
    p99_s: float
    utilization: float
    occupancy: float
    reason: str

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe dict (keys match the ``load.json`` schema)."""
        return {
            "window": self.window,
            "action": self.action,
            "old_n": self.old_n,
            "new_n": self.new_n,
            "p99_s": self.p99_s,
            "utilization": self.utilization,
            "occupancy": self.occupancy,
            "reason": self.reason,
        }


class Autoscaler:
    """Stateful wrapper around the decision rule (streaks + cooldown)."""

    def __init__(self, config: Optional[AutoscalerConfig] = None) -> None:
        self.config = config if config is not None else AutoscalerConfig()
        self.decisions: List[ScaleDecision] = []
        self._up_streak = 0
        self._down_streak = 0
        self._cooldown = 0

    # ------------------------------------------------------------------
    def _occupancy(self, resident_keys: int, n_shards: int) -> float:
        cfg = self.config
        if cfg.target_keys_per_shard is None:
            return 0.0
        return resident_keys / float(cfg.target_keys_per_shard * n_shards)

    def observe(
        self,
        window: WindowStats,
        resident_keys: int = 0,
        migration_in_flight: bool = False,
    ) -> Optional[ScaleDecision]:
        """Feed one window; returns a decision or ``None``.

        ``resident_keys`` drives the optional occupancy signal;
        ``migration_in_flight`` blocks new decisions (one resize at a
        time — the harness drains the current migration first).
        """
        cfg = self.config
        n = window.n_shards
        p99 = window.stats.p99_s
        util = window.utilization
        occ = self._occupancy(resident_keys, n)

        up_reasons = []
        if p99 > cfg.p99_high_s:
            up_reasons.append(f"p99 {p99 * 1e3:.2f}ms > {cfg.p99_high_s * 1e3:.2f}ms")
        if util > cfg.util_high:
            up_reasons.append(f"util {util:.2f} > {cfg.util_high:.2f}")
        if cfg.occ_high is not None and occ > cfg.occ_high:
            up_reasons.append(f"occupancy {occ:.2f} > {cfg.occ_high:.2f}")
        breach_up = bool(up_reasons)
        breach_down = (
            p99 < cfg.p99_low_s
            and util < cfg.util_low
            and (cfg.occ_high is None or occ < cfg.occ_high)
        )

        self._up_streak = self._up_streak + 1 if breach_up else 0
        self._down_streak = self._down_streak + 1 if breach_down else 0

        if migration_in_flight:
            return None
        if self._cooldown > 0:
            self._cooldown -= 1
            return None

        decision: Optional[ScaleDecision] = None
        if self._up_streak >= cfg.breach_windows and n < cfg.max_shards:
            new_n = min(cfg.max_shards, math.ceil(n * cfg.growth_factor))
            decision = ScaleDecision(
                window=window.window, action="grow", old_n=n, new_n=new_n,
                p99_s=p99, utilization=util, occupancy=occ,
                reason="; ".join(up_reasons),
            )
        elif self._down_streak >= cfg.breach_windows and n > cfg.min_shards:
            new_n = max(cfg.min_shards, int(n // cfg.growth_factor))
            if new_n < n:
                decision = ScaleDecision(
                    window=window.window, action="shrink", old_n=n, new_n=new_n,
                    p99_s=p99, utilization=util, occupancy=occ,
                    reason=(
                        f"p99 {p99 * 1e3:.2f}ms < {cfg.p99_low_s * 1e3:.2f}ms"
                        f" and util {util:.2f} < {cfg.util_low:.2f}"
                    ),
                )
        if decision is not None:
            self.decisions.append(decision)
            self._up_streak = 0
            self._down_streak = 0
            self._cooldown = cfg.cooldown_windows
        return decision

    @property
    def grows(self) -> int:
        return sum(1 for d in self.decisions if d.action == "grow")

    @property
    def shrinks(self) -> int:
        return sum(1 for d in self.decisions if d.action == "shrink")
