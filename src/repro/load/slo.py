"""Tail-latency statistics and SLO attainment.

The load harness records one latency per replayed request; this module
turns those samples into the numbers operators actually watch: nearest-
rank percentiles (p50 / p99 / p999) and the attainment of a latency SLO
(``fraction of requests served within target_s`` vs a goal like 99%).

Nearest-rank percentiles are used deliberately: they are exact order
statistics of the sample, so two bit-identical runs produce bit-identical
reports — no interpolation-mode ambiguity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

import numpy as np

__all__ = ["nearest_rank", "LatencyStats", "SloPolicy", "WindowStats"]


def nearest_rank(sorted_samples: np.ndarray, q: float) -> float:
    """Nearest-rank percentile ``q`` (in [0, 100]) of a sorted array."""
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    n = len(sorted_samples)
    if n == 0:
        return 0.0
    rank = int(np.ceil(q / 100.0 * n))
    return float(sorted_samples[max(rank, 1) - 1])


@dataclass(frozen=True)
class LatencyStats:
    """Order-statistic summary of a latency sample set."""

    n: int
    mean_s: float
    p50_s: float
    p99_s: float
    p999_s: float
    max_s: float

    @classmethod
    def from_samples(cls, samples: np.ndarray) -> "LatencyStats":
        """Summarize raw per-request latencies (any order)."""
        arr = np.asarray(samples, dtype=np.float64)
        if arr.size == 0:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        s = np.sort(arr)
        return cls(
            n=int(s.size),
            mean_s=float(s.mean()),
            p50_s=nearest_rank(s, 50.0),
            p99_s=nearest_rank(s, 99.0),
            p999_s=nearest_rank(s, 99.9),
            max_s=float(s[-1]),
        )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe dict (keys match the ``load.json`` schema)."""
        return {
            "n": self.n,
            "mean_s": self.mean_s,
            "p50_s": self.p50_s,
            "p99_s": self.p99_s,
            "p999_s": self.p999_s,
            "max_s": self.max_s,
        }


@dataclass(frozen=True)
class SloPolicy:
    """A latency SLO: ``goal`` fraction of requests within ``target_s``."""

    target_s: float
    goal: float = 0.99

    def __post_init__(self) -> None:
        if self.target_s <= 0:
            raise ValueError("target_s must be positive")
        if not 0.0 < self.goal <= 1.0:
            raise ValueError("goal must be in (0, 1]")

    def attainment(self, samples: np.ndarray) -> float:
        """Fraction of samples at or under the target (1.0 when empty)."""
        arr = np.asarray(samples, dtype=np.float64)
        if arr.size == 0:
            return 1.0
        return float(np.count_nonzero(arr <= self.target_s)) / float(arr.size)

    def met(self, samples: np.ndarray) -> bool:
        """Did the sample set attain the goal?"""
        return self.attainment(samples) >= self.goal

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe dict (keys match the ``load.json`` schema)."""
        return {"target_s": self.target_s, "goal": self.goal}


@dataclass(frozen=True)
class WindowStats:
    """One replay window's service summary (the autoscaler's input)."""

    window: int  # 0-based window index
    n: int  # requests in the window
    stats: LatencyStats
    attainment: float  # SLO attainment within the window
    offered_rps: float  # arrival rate over the window's trace span
    utilization: float  # offered / (n_shards * service_rate)
    n_shards: int  # effective shard count during the window

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe dict (keys match the ``load.json`` schema)."""
        return {
            "window": self.window,
            "n": self.n,
            "latency": self.stats.as_dict(),
            "attainment": self.attainment,
            "offered_rps": self.offered_rps,
            "utilization": self.utilization,
            "n_shards": self.n_shards,
        }
