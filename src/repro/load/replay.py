"""Trace replay harness: drive the shard tier, measure tails, autoscale.

:class:`ReplayHarness` replays a :class:`~repro.load.traces.LoadTrace`
against a :class:`~repro.dist.client.ShardedCacheClient` over the
simulated RPC channel and clock, recording one latency per request and
aggregating them into windowed p50/p99/p999 + SLO attainment
(:mod:`repro.load.slo`). An optional
:class:`~repro.load.autoscaler.Autoscaler` watches the windows and
triggers live ring resizes; migrations drain *incrementally* (one batch
per subsequent request) while traffic continues, and
``verify_placement()`` must come back clean after every completed
resize — the PR-5 oracle, now exercised under load.

Determinism: the trace is seeded, the clock is simulated, RPC latency is
deterministic, and the autoscaler is a pure function of windowed stats —
so the entire run (latencies, decisions, report) is bit-identical across
invocations with the same seed. With the autoscaler disabled the harness
issues exactly the per-request ops and nothing else, which is what the
differential suite checks against direct client calls.

Congestion model: shard service capacity is finite. Each window's
offered arrival rate (from the trace timeline) is divided by
``n_shards * service_rate_per_shard`` to get a utilization ρ, and every
RPC's latency is inflated by ``1 / (1 - min(ρ, cap))`` — an M/M/1-style
response-time curve. Growing the ring genuinely lowers per-request
latency under load, which is what gives the autoscaler a real signal
(and a real reward).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.dist.client import ShardedCacheClient
from repro.dist.retry import RetryPolicy
from repro.load.autoscaler import Autoscaler, ScaleDecision
from repro.load.burnrate import (
    DEFAULT_BURN_RULES,
    BurnRateEvaluator,
    BurnRateRule,
)
from repro.load.slo import LatencyStats, SloPolicy, WindowStats
from repro.load.traces import OP_PUT, LoadTrace
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.obs.report import LOAD_FILE
from repro.storage.clock import SimClock
from repro.storage.latency import ConstantLatency, LatencyModel

__all__ = [
    "CongestionLatency",
    "ReplayConfig",
    "ReplayHarness",
    "LoadResult",
    "write_load_artifacts",
    "payload_for",
    "neighbors_for",
    "apply_request",
]

#: Simulated-clock stage names used by the harness.
ARRIVAL_STAGE = "arrival"  # idle time waiting for the next arrival
MISS_STAGE = "load_miss"  # backing-store fetch cost on a cache miss

#: Homophily neighbor-list degree for PUT ops (must be < n_keys).
PUT_DEGREE = 4


class CongestionLatency:
    """Latency model inflating a base by M/M/1 queueing delay.

    ``utilization`` (set by the harness each window, and on resizes) is
    the offered-rate / service-capacity ratio ρ; sampled latencies are
    scaled by ``1 / (1 - min(ρ, max_utilization))``. Deterministic when
    the base model is.
    """

    def __init__(
        self,
        base: Optional[LatencyModel] = None,
        max_utilization: float = 0.9,
    ) -> None:
        if not 0.0 < max_utilization < 1.0:
            raise ValueError("max_utilization must be in (0, 1)")
        self.base = base if base is not None else ConstantLatency(
            base_s=2e-4, bandwidth_bps=10e9
        )
        self.max_utilization = float(max_utilization)
        self.utilization = 0.0

    def factor(self) -> float:
        """Current congestion multiplier (>= 1)."""
        u = min(max(self.utilization, 0.0), self.max_utilization)
        return 1.0 / (1.0 - u)

    def sample(self, nbytes: int) -> float:
        """Base latency for ``nbytes`` inflated by the congestion factor."""
        return self.base.sample(nbytes) * self.factor()


@dataclass(frozen=True)
class ReplayConfig:
    """Tier + service parameters for one replay."""

    total_capacity: int
    imp_ratio: float = 0.8
    n_shards: int = 2
    # "sim" (default): simulated clock + M/M/1 congestion model, paced
    # open-loop from the trace timeline; deterministic and digest-stable.
    # "real": shard servers in worker processes (RealRpcTransport) on a
    # wall clock, driven closed-loop as fast as the hardware allows;
    # latencies are measured, the congestion model is bypassed.
    transport: str = "sim"
    window_requests: int = 1000
    slo: SloPolicy = SloPolicy(target_s=0.02, goal=0.99)
    miss_latency_s: float = 1e-3  # backing-store fetch on a miss
    service_rate_per_shard: float = 2000.0  # req/s before queueing
    rpc_deadline_s: float = 0.05
    rpc_retry_budget: int = 3
    payload_dim: int = 16
    seed: int = 0

    def __post_init__(self) -> None:
        if self.total_capacity < 1:
            raise ValueError("total_capacity must be >= 1")
        if not 0.0 <= self.imp_ratio <= 1.0:
            raise ValueError("imp_ratio must be in [0, 1]")
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if self.window_requests < 1:
            raise ValueError("window_requests must be >= 1")
        if self.miss_latency_s < 0:
            raise ValueError("miss_latency_s must be >= 0")
        if self.service_rate_per_shard <= 0:
            raise ValueError("service_rate_per_shard must be positive")
        if self.rpc_deadline_s <= 0:
            raise ValueError("rpc_deadline_s must be positive")
        if self.rpc_retry_budget < 1:
            raise ValueError("rpc_retry_budget must be >= 1")
        if self.payload_dim < 1:
            raise ValueError("payload_dim must be >= 1")
        if self.transport not in ("sim", "real"):
            raise ValueError(
                f"transport must be 'sim' or 'real', got {self.transport!r}"
            )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe dict (keys match the ``load.json`` schema)."""
        return {
            "total_capacity": self.total_capacity,
            "imp_ratio": self.imp_ratio,
            "n_shards": self.n_shards,
            "transport": self.transport,
            "window_requests": self.window_requests,
            "slo": self.slo.as_dict(),
            "miss_latency_s": self.miss_latency_s,
            "service_rate_per_shard": self.service_rate_per_shard,
            "rpc_deadline_s": self.rpc_deadline_s,
            "rpc_retry_budget": self.rpc_retry_budget,
            "payload_dim": self.payload_dim,
            "seed": self.seed,
        }


# ----------------------------------------------------------------------
# request semantics (shared with the differential suite)
# ----------------------------------------------------------------------
def payload_for(key: int, dim: int) -> np.ndarray:
    """Deterministic payload for a key (what the backing store serves)."""
    return np.full(int(dim), float(key), dtype=np.float32)


def neighbors_for(key: int, n_keys: int, degree: int = PUT_DEGREE) -> List[int]:
    """Deterministic neighbor list for a PUT's homophily insert."""
    return [(int(key) + j) % int(n_keys) for j in range(1, degree + 1)]


def apply_request(
    client: ShardedCacheClient,
    op: int,
    key: int,
    score: float,
    remote_get,
    n_keys: int,
    payload_dim: int,
) -> Tuple[Any, ...]:
    """Issue one trace request against a client; returns a comparable
    outcome tuple. This is the *entire* per-request interaction — the
    differential suite replays the same calls directly."""
    if op == OP_PUT:
        ok = client.update_homophily(
            int(key),
            payload_for(key, payload_dim),
            neighbors_for(key, n_keys),
        )
        return ("put", int(key), bool(ok))
    out = client.fetch(int(key), float(score), remote_get)
    return ("get", out.requested_id, out.served_id, out.source.value)


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
@dataclass
class LoadResult:
    """Everything one replay produced (summary + per-window detail)."""

    config: Dict[str, Any]
    trace_meta: Dict[str, Any]
    n_requests: int
    duration_s: float
    offered_rps: float
    latencies: np.ndarray
    overall: LatencyStats
    slo: SloPolicy
    attainment: float
    windows: List[WindowStats]
    alerts: Dict[str, Any]
    decisions: List[ScaleDecision]
    initial_shards: int
    final_shards: int
    resizes_verified: int
    moved_keys: int
    cache: Dict[str, Any]
    outcomes: Optional[List[Tuple[Any, ...]]] = None
    _digest: Optional[str] = field(default=None, repr=False)

    @property
    def grows(self) -> int:
        return sum(1 for d in self.decisions if d.action == "grow")

    @property
    def shrinks(self) -> int:
        return sum(1 for d in self.decisions if d.action == "shrink")

    @property
    def slo_met(self) -> bool:
        return self.attainment >= self.slo.goal

    def summary(self) -> Dict[str, Any]:
        """JSON-safe run summary (the ``load.json`` schema, sans digest)."""
        worst = max(self.windows, key=lambda w: w.stats.p99_s, default=None)
        return {
            "kind": "load",
            "config": self.config,
            "trace": self.trace_meta,
            "requests": self.n_requests,
            "duration_s": self.duration_s,
            "offered_rps": self.offered_rps,
            "latency": self.overall.as_dict(),
            "slo": {
                **self.slo.as_dict(),
                "attainment": self.attainment,
                "met": self.slo_met,
            },
            "alerts": self.alerts,
            "cache": self.cache,
            "autoscaler": {
                "grows": self.grows,
                "shrinks": self.shrinks,
                "initial_shards": self.initial_shards,
                "final_shards": self.final_shards,
                "resizes_verified": self.resizes_verified,
                "moved_keys": self.moved_keys,
                "decisions": [d.as_dict() for d in self.decisions],
            },
            "windows": [w.as_dict() for w in self.windows],
        }

    def digest(self) -> str:
        """Run fingerprint: canonical summary JSON + raw latency bytes.

        Two invocations with the same seed must produce equal digests —
        the bit-identity acceptance check.
        """
        if self._digest is None:
            h = hashlib.sha256()
            h.update(
                json.dumps(self.summary(), sort_keys=True).encode()
            )
            h.update(np.ascontiguousarray(self.latencies).tobytes())
            self._digest = h.hexdigest()[:16]
        return self._digest


def write_load_artifacts(
    result: LoadResult,
    out_dir: Union[str, Path],
    metrics_snapshot: Optional[Dict[str, Any]] = None,
) -> Path:
    """Export ``load.json`` under ``out_dir`` (consumed by ``repro
    report``'s load / SLO section). Returns the file path.

    ``metrics_snapshot`` (a
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`) is embedded
    under ``"metrics"`` so ``repro metrics`` can re-export the run in
    Prometheus text format; it is *not* part of the digest.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    doc = result.summary()
    doc["digest"] = result.digest()
    if metrics_snapshot is not None:
        doc["metrics"] = metrics_snapshot
    path = out / LOAD_FILE
    path.write_text(json.dumps(doc, indent=2, sort_keys=True))
    return path


# ----------------------------------------------------------------------
# the harness
# ----------------------------------------------------------------------
class ReplayHarness:
    """Replays traces against a fresh sharded tier.

    Parameters
    ----------
    config:
        Tier + service parameters.
    autoscaler:
        Optional :class:`Autoscaler`; ``None`` replays at the fixed
        initial shard count (the differential-testing mode).
    fault_plans:
        Optional ``{shard_id: FaultPlan}`` injected into the RPC
        channel — replay under outages/brownouts.
    observer:
        Receives ``on_load_window`` / ``on_autoscale`` / ``on_alert``
        hooks plus all the client's RPC/breaker instrumentation; with
        span tracing enabled the run/window/request span hierarchy is
        emitted through it too.
    burn_rules:
        Burn-rate alert rules evaluated over the windows
        (:data:`~repro.load.burnrate.DEFAULT_BURN_RULES` by default;
        pass ``()`` to disable alerting).
    """

    def __init__(
        self,
        config: ReplayConfig,
        autoscaler: Optional[Autoscaler] = None,
        fault_plans: Optional[Dict[int, Any]] = None,
        observer: Optional[Observer] = None,
        burn_rules: Optional[Tuple[BurnRateRule, ...]] = None,
    ) -> None:
        self.config = config
        self.autoscaler = autoscaler
        self.burn_rules = (
            DEFAULT_BURN_RULES if burn_rules is None else tuple(burn_rules)
        )
        if config.transport == "real":
            if fault_plans:
                raise ValueError(
                    "fault plans are a simulation feature; wall-clock chaos "
                    "uses the real transport's kill_shard"
                )
            self.latency: Optional[CongestionLatency] = None
            self.client = ShardedCacheClient(
                config.total_capacity,
                imp_ratio=config.imp_ratio,
                n_shards=config.n_shards,
                transport="real",
                deadline_s=config.rpc_deadline_s,
                retry=RetryPolicy(
                    max_attempts=config.rpc_retry_budget,
                    seed=config.seed,
                ),
            )
            self.clock = self.client.clock  # the transport's WallClock
        else:
            self.clock = SimClock()
            self.latency = CongestionLatency()
            self.client = ShardedCacheClient(
                config.total_capacity,
                imp_ratio=config.imp_ratio,
                n_shards=config.n_shards,
                clock=self.clock,
                latency=self.latency,
                deadline_s=config.rpc_deadline_s,
                retry=RetryPolicy(
                    max_attempts=config.rpc_retry_budget,
                    seed=config.seed,
                ),
                fault_plans=fault_plans,
            )
        self._obs = observer if observer is not None else NULL_OBSERVER
        if observer is not None:
            self.client.attach_observer(observer)
        self._resizes_verified = 0

    def close(self) -> None:
        """Release the shard tier (worker processes in real mode);
        idempotent, no-op over the simulated channel."""
        self.client.close()

    # ------------------------------------------------------------------
    def _remote_get(self, index: int):
        """Backing-store fetch on a miss (charges the miss latency)."""
        if self.config.miss_latency_s:
            self.clock.advance(MISS_STAGE, self.config.miss_latency_s)
        return payload_for(index, self.config.payload_dim)

    def _effective_shards(self) -> int:
        """Shard count used for capacity math: the migration target
        while a resize drains (grown servers serve immediately; a
        shrinking fleet should be provisioned for its end state)."""
        mig = self.client.migration
        if mig is not None:
            return mig.new_n_shards
        return self.client.n_shards

    def _set_utilization(self, offered_rps: float) -> float:
        rho = offered_rps / (
            self.config.service_rate_per_shard * self._effective_shards()
        )
        if self.latency is not None:  # real transport: latency is real
            self.latency.utilization = rho
        return rho

    def _finish_migration_step(self) -> None:
        """Drain one migration batch per request; verify at completion."""
        client = self.client
        if client.migration is None:
            return
        client.continue_migration(max_batches=1)
        if client.migration is None:  # just finalized
            violations = client.verify_placement()
            if violations:
                raise RuntimeError(
                    f"verify_placement failed after resize: "
                    f"{len(violations)} violation(s), e.g. {violations[0]}"
                )
            self._resizes_verified += 1

    def _drain_migration_fully(self, max_rounds: int = 1000) -> None:
        """End-of-trace drain: keep attempting pending batches, ticking
        the clock between rounds so open breakers can half-open."""
        client = self.client
        rounds = 0
        while client.migration is not None:
            rounds += 1
            if rounds > max_rounds:
                raise RuntimeError(
                    "migration failed to drain after "
                    f"{max_rounds} rounds (shard permanently down?)"
                )
            client.continue_migration()
            if client.migration is not None:
                self.clock.advance(ARRIVAL_STAGE, 0.01)
        if rounds:
            violations = client.verify_placement()
            if violations:
                raise RuntimeError(
                    f"verify_placement failed after final drain: "
                    f"{len(violations)} violation(s), e.g. {violations[0]}"
                )
            self._resizes_verified += 1

    # ------------------------------------------------------------------
    def run(
        self, trace: LoadTrace, record_outcomes: bool = False
    ) -> LoadResult:
        """Replay ``trace`` start to finish; returns the
        :class:`LoadResult` (raises if a resize fails verification)."""
        cfg = self.config
        client = self.client
        obs = self._obs
        n = len(trace)
        w = cfg.window_requests
        latencies = np.zeros(n, dtype=np.float64)
        outcomes: Optional[List[Tuple[Any, ...]]] = (
            [] if record_outcomes else None
        )
        windows: List[WindowStats] = []
        burn = BurnRateEvaluator(cfg.slo.goal, self.burn_rules)
        initial_shards = client.n_shards
        moved_before = 0  # moved_keys accumulates across MigrationStates
        total_moved = 0
        run_span = (
            obs.span_start("load_run", self.clock.total_seconds, requests=n)
            if obs.active else None
        )

        keys = trace.keys
        ops = trace.ops
        scores = trace.scores
        arrival = trace.arrival_s

        # Per-window offered rates, straight from the (open-loop) trace
        # timeline — known up front, so window w's congestion reflects
        # window w's own arrival pressure.
        starts = list(range(0, n, w))
        for wi, lo in enumerate(starts):
            hi = min(lo + w, n)
            span = float(arrival[hi - 1] - arrival[lo]) if hi - lo > 1 else 0.0
            offered = (hi - lo) / span if span > 0 else float(
                cfg.service_rate_per_shard
            )
            rho = self._set_utilization(offered)
            win_span = (
                obs.span_start("window", self.clock.total_seconds, window=wi)
                if obs.active else None
            )

            for i in range(lo, hi):
                t_arr = float(arrival[i])
                now = self.clock.total_seconds
                if cfg.transport == "sim" and t_arr > now:
                    # Open-loop pacing from the trace timeline (sim only:
                    # a wall-clock replay runs closed-loop, as fast as
                    # the shard fleet will go).
                    self.clock.advance(ARRIVAL_STAGE, t_arr - now)
                before = self.clock.total_seconds
                out = apply_request(
                    client, int(ops[i]), int(keys[i]), float(scores[i]),
                    self._remote_get, trace.n_keys, cfg.payload_dim,
                )
                latencies[i] = self.clock.total_seconds - before
                if outcomes is not None:
                    outcomes.append(out)
                if client.migration is not None:
                    mig = client.migration
                    self._finish_migration_step()
                    if client.migration is None:
                        total_moved += mig.moved_keys - moved_before
                        moved_before = 0

            window_lat = latencies[lo:hi]
            stats = LatencyStats.from_samples(window_lat)
            window = WindowStats(
                window=wi,
                n=hi - lo,
                stats=stats,
                attainment=cfg.slo.attainment(window_lat),
                offered_rps=offered,
                utilization=rho,
                n_shards=self._effective_shards(),
            )
            windows.append(window)
            if obs.active:
                obs.on_load_window(
                    wi, window.n, stats.p50_s, stats.p99_s, stats.p999_s,
                    window.attainment, offered, rho, window.n_shards,
                )
            for alert in burn.observe(wi, window.attainment, window.n):
                if obs.active:
                    obs.on_alert(
                        alert.rule, alert.state, alert.window,
                        alert.burn_short, alert.burn_long, alert.threshold,
                    )
            if self.autoscaler is not None:
                decision = self.autoscaler.observe(
                    window,
                    resident_keys=len(client),
                    migration_in_flight=client.migration is not None,
                )
                if decision is not None:
                    client.resize(decision.new_n, drain=False)
                    if client.migration is not None:
                        moved_before = 0
                    # Re-derive congestion for the new fleet size at the
                    # current window's offered rate.
                    rho = self._set_utilization(offered)
                    if obs.active:
                        obs.on_autoscale(
                            decision.action, decision.old_n, decision.new_n,
                            decision.window, decision.reason,
                            decision.p99_s, decision.utilization,
                        )
            if obs.active:
                obs.span_end(win_span, self.clock.total_seconds)

        if client.migration is not None:
            mig = client.migration
            self._drain_migration_fully()
            total_moved += mig.moved_keys - moved_before
        if obs.active:
            obs.span_end(run_span, self.clock.total_seconds)

        stats = client.stats
        decisions = (
            list(self.autoscaler.decisions) if self.autoscaler else []
        )
        overall = LatencyStats.from_samples(latencies)
        return LoadResult(
            config=cfg.as_dict(),
            trace_meta=dict(trace.meta),
            n_requests=n,
            duration_s=trace.duration_s,
            offered_rps=trace.offered_rps,
            latencies=latencies,
            overall=overall,
            slo=cfg.slo,
            attainment=cfg.slo.attainment(latencies),
            windows=windows,
            alerts=burn.as_dict(),
            decisions=decisions,
            initial_shards=initial_shards,
            final_shards=client.n_shards,
            resizes_verified=self._resizes_verified,
            moved_keys=total_moved,
            cache={
                "hit_ratio": client.hit_ratio,
                "hits": stats.hits,
                "substitute_hits": stats.substitute_hits,
                "misses": stats.misses,
                "degraded_serves": stats.degraded_serves,
                "dropped_admits": client.dropped_admits,
                "degraded_lookups": client.degraded_lookups,
                "rpc_retries": client.rpc_retries,
                "resident": len(client),
            },
            outcomes=outcomes,
        )
