"""repro.load — trace-driven load harness for the sharded cache tier.

Closes the policy half of ROADMAP item 1: seeded workload generators
(:mod:`~repro.load.traces`), a replay harness measuring per-request tail
latency and SLO attainment (:mod:`~repro.load.replay`,
:mod:`~repro.load.slo`), and a hysteresis autoscaler driving live ring
resizes mid-replay (:mod:`~repro.load.autoscaler`) — every resize
re-checked with the ``verify_placement()`` oracle.
"""

from repro.load.autoscaler import Autoscaler, AutoscalerConfig, ScaleDecision
from repro.load.burnrate import (
    DEFAULT_BURN_RULES,
    AlertEvent,
    BurnRateEvaluator,
    BurnRateRule,
    burn_rate,
)
from repro.load.replay import (
    CongestionLatency,
    LoadResult,
    ReplayConfig,
    ReplayHarness,
    apply_request,
    neighbors_for,
    payload_for,
    write_load_artifacts,
)
from repro.load.slo import LatencyStats, SloPolicy, WindowStats, nearest_rank
from repro.load.traces import (
    OP_GET,
    OP_PUT,
    ArrivalProcess,
    BurstyArrivals,
    ConstantArrivals,
    DiurnalArrivals,
    LoadTrace,
    ModulatedArrivals,
    TraceConfig,
    expected_top_k_mass,
    make_trace,
    mix_traces,
    top_k_mass,
    zipfian_keys,
)

__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "ScaleDecision",
    "AlertEvent",
    "BurnRateEvaluator",
    "BurnRateRule",
    "DEFAULT_BURN_RULES",
    "burn_rate",
    "CongestionLatency",
    "LoadResult",
    "ReplayConfig",
    "ReplayHarness",
    "apply_request",
    "neighbors_for",
    "payload_for",
    "write_load_artifacts",
    "LatencyStats",
    "SloPolicy",
    "WindowStats",
    "nearest_rank",
    "OP_GET",
    "OP_PUT",
    "ArrivalProcess",
    "BurstyArrivals",
    "ConstantArrivals",
    "DiurnalArrivals",
    "LoadTrace",
    "ModulatedArrivals",
    "TraceConfig",
    "expected_top_k_mass",
    "make_trace",
    "mix_traces",
    "top_k_mass",
    "zipfian_keys",
]
