#!/usr/bin/env python
"""Policy shoot-out: SpiderCache vs every baseline on one workload.

Reproduces the paper's end-to-end comparison (§6.4) in miniature: five
policies, the same dataset/model/budget, reporting hit ratio, accuracy,
and simulated training time — the three axes of Fig. 1.

Run:  python examples/policy_shootout.py
"""

from repro import SpiderCachePolicy, Trainer, TrainerConfig
from repro.baselines import (
    CoorDLPolicy,
    ICacheFullPolicy,
    LRUBaselinePolicy,
    ShadePolicy,
)
from repro.data import make_dataset, train_test_split
from repro.nn import build_model

CACHE_FRACTION = 0.2
EPOCHS = 12


def main() -> None:
    data = make_dataset("cifar10-like", rng=0, n_samples=1600)
    train, test = train_test_split(data, test_fraction=0.25, rng=1)

    policies = [
        SpiderCachePolicy(cache_fraction=CACHE_FRACTION, rng=3),
        ShadePolicy(cache_fraction=CACHE_FRACTION, rng=3),
        ICacheFullPolicy(cache_fraction=CACHE_FRACTION, rng=3),
        CoorDLPolicy(cache_fraction=CACHE_FRACTION, rng=3),
        LRUBaselinePolicy(cache_fraction=CACHE_FRACTION, rng=3),
    ]

    results = []
    for policy in policies:
        model = build_model("resnet18", train.dim, train.num_classes, rng=2)
        res = Trainer(model, train, test, policy,
                      TrainerConfig(epochs=EPOCHS, batch_size=64)).run()
        results.append(res)
        print(f"finished {policy.name}")

    baseline_time = next(
        r.total_time_s for r in results if r.policy_name == "baseline-lru"
    )
    print(f"\n{'policy':<14} {'hit ratio':>9} {'accuracy':>9} "
          f"{'time':>7} {'speed-up':>8}")
    for res in results:
        print(f"{res.policy_name:<14} {res.mean_hit_ratio:>9.3f} "
              f"{res.final_accuracy:>9.3f} {res.total_time_s:>6.1f}s "
              f"{baseline_time / res.total_time_s:>7.2f}x")


if __name__ == "__main__":
    main()
