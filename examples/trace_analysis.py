#!/usr/bin/env python
"""Trace analysis: why importance sampling makes caching possible at all.

Records real access traces — one from uniform random sampling, one from a
trained SpiderCache policy — and replays both through LRU, MinIO, and
Belady's clairvoyant OPT. Under random sampling even the offline optimum is
capped at the cache fraction (and MinIO achieves it); under importance
sampling the same cache budget suddenly has 3x the attainable hit ratio.
That asymmetry is the paper's core thesis, reduced to one table.

Run:  python examples/trace_analysis.py
"""

import numpy as np

from repro import SpiderCachePolicy, Trainer, TrainerConfig
from repro.cache import AccessTrace, LRUCache, MinIOCache, belady_hit_ratio, record_trace, replay
from repro.data import make_dataset, train_test_split
from repro.nn import build_model

EPOCHS = 6
CAPACITY_FRACTION = 0.2


def main() -> None:
    data = make_dataset("cifar10-like", rng=0, n_samples=1200)
    train, test = train_test_split(data, test_fraction=0.25, rng=1)
    n = len(train)
    cap = int(CAPACITY_FRACTION * n)

    # Trace 1: uniform random sampling (the PyTorch default).
    rng = np.random.default_rng(2)
    uniform_trace = record_trace(lambda e: rng.permutation(n), epochs=EPOCHS)

    # Trace 2: SpiderCache's importance-weighted sampler at steady state.
    model = build_model("resnet18", train.dim, train.num_classes, rng=3)
    policy = SpiderCachePolicy(cache_fraction=CAPACITY_FRACTION, rng=4)
    Trainer(model, train, test, policy,
            TrainerConfig(epochs=EPOCHS, batch_size=64)).run()
    is_trace = record_trace(policy.epoch_order, epochs=EPOCHS)

    print(f"cache capacity: {cap} items ({CAPACITY_FRACTION:.0%} of {n})\n")
    print(f"{'trace':<22} {'unique':>7} {'LRU':>7} {'MinIO':>7} {'OPT':>7}")
    for name, trace in [("random sampling", uniform_trace),
                        ("importance sampling", is_trace)]:
        lru = replay(trace, LRUCache(cap)).hit_ratio
        minio = replay(trace, MinIOCache(cap)).hit_ratio
        opt = belady_hit_ratio(trace, cap)
        print(f"{name:<22} {trace.unique_count:>7} {lru:>7.3f} "
              f"{minio:>7.3f} {opt:>7.3f}")

    hist = is_trace.frequency_histogram(n)
    print(f"\nimportance-trace frequency skew: max {hist.max()} accesses, "
          f"{(hist == 0).sum()} samples never drawn, "
          f"top-10% of samples receive {np.sort(hist)[::-1][:n // 10].sum() / hist.sum():.0%} "
          f"of all accesses")
    print("\nTakeaway: under random sampling MinIO already achieves the "
          "offline optimum — no cleverness can beat it. The importance "
          "sampler is what creates the locality SpiderCache exploits.")


if __name__ == "__main__":
    main()
