#!/usr/bin/env python
"""ANN substrate demo: HNSW search, dynamic updates, and PQ compression.

The graph-based IS algorithm needs fast approximate neighbor search over
*moving* embeddings. This example exercises the HNSW index directly —
build, query, update, and delete — and shows Product Quantization shrinking
the index memory by ~16x at small recall cost (the paper's Table-2 story).

Run:  python examples/ann_index_demo.py
"""

import time

import numpy as np

from repro.ann import (
    BruteForceIndex,
    HNSWIndex,
    IndexStorageModel,
    ProductQuantizer,
)


def main() -> None:
    rng = np.random.default_rng(0)
    n, dim = 3000, 64
    centers = rng.normal(0, 4, (20, dim))
    data = centers[rng.integers(20, size=n)] + rng.normal(0, 1, (n, dim))

    # --- Build ---------------------------------------------------------
    t0 = time.perf_counter()
    hnsw = HNSWIndex(dim, M=16, ef_construction=100, rng=1)
    hnsw.add_batch(np.arange(n), data)
    print(f"HNSW: built {n} x {dim} in {time.perf_counter() - t0:.1f}s, "
          f"max level {hnsw.max_level}")

    brute = BruteForceIndex(dim)
    brute.add_batch(np.arange(n), data)

    # --- Search quality vs speed ----------------------------------------
    queries = rng.normal(0, 4, (100, dim))
    for ef in [16, 64]:
        t0 = time.perf_counter()
        recall = 0.0
        for q in queries:
            h_ids, _ = hnsw.search(q, k=10, ef=ef)
            b_ids, _ = brute.search(q, k=10)
            recall += len(set(h_ids) & set(b_ids)) / 10
        dt = (time.perf_counter() - t0) / len(queries) * 1e3
        print(f"  ef={ef:>3}: recall@10 = {recall / len(queries):.3f}, "
              f"{dt:.2f} ms/query (incl. exact oracle)")

    # --- Dynamic updates (embeddings drift during training) --------------
    moved_id = 7
    target = data[100]
    hnsw.update(moved_id, target + 0.01)
    ids, _ = hnsw.search(target, k=2, ef=64)
    print(f"after update: neighbors of target = {ids.tolist()} "
          f"(expect {100} and {moved_id})")
    hnsw.remove(moved_id)
    ids, _ = hnsw.search(target, k=2, ef=64)
    print(f"after remove: {moved_id} gone -> {ids.tolist()}")

    # --- PQ compression ---------------------------------------------------
    pq = ProductQuantizer(dim=dim, m=8, nbits=8)
    pq.train(data[:1000], rng=2)
    codes = pq.encode(data)
    raw_bytes = data.nbytes
    print(f"\nPQ: {raw_bytes / 1024:.0f} KB raw -> {codes.nbytes / 1024:.0f} KB codes "
          f"({raw_bytes / codes.nbytes:.0f}x), "
          f"mean reconstruction error {pq.quantization_error(data[:200]):.2f}")
    q = data[0]
    adc = pq.adc_distances(q, codes)
    print(f"ADC nearest to sample 0: id {int(adc.argmin())} (expect 0)")

    # --- Table-2-style projection ----------------------------------------
    model = IndexStorageModel()
    for name, count, raw in [("ImageNet-1K", 1_200_000, 138 * 1024**3),
                             ("LAION-400M", 400_000_000, 240 * 1024**4)]:
        est = model.index_size_bytes(count)
        print(f"{name}: index ~{est / 1024**2:.0f} MB "
              f"({model.compression_ratio(count, raw):,.0f}x compression)")


if __name__ == "__main__":
    main()
