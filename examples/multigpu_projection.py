#!/usr/bin/env python
"""Multi-GPU projection: how caching gains scale with data parallelism.

Runs baseline-LRU and SpiderCache once each on a single simulated GPU,
then projects per-epoch time onto 1-4 data-parallel workers (paper §6.6 /
Fig. 17): compute splits across GPUs, the I/O stall shrinks more slowly,
and all-reduce communication grows — so the caching win persists at scale.

Run:  python examples/multigpu_projection.py
"""

from repro import SpiderCachePolicy, Trainer, TrainerConfig
from repro.baselines import LRUBaselinePolicy
from repro.data import make_dataset, train_test_split
from repro.nn import build_model
from repro.train import MultiGPUSimulator

GPUS = [1, 2, 3, 4]


def main() -> None:
    data = make_dataset("cifar10-like", rng=0, n_samples=1600)
    train, test = train_test_split(data, test_fraction=0.25, rng=1)

    runs = {}
    for name, policy in [
        ("baseline", LRUBaselinePolicy(cache_fraction=0.2, rng=3)),
        ("spidercache", SpiderCachePolicy(cache_fraction=0.2, rng=3)),
    ]:
        model = build_model("resnet18", train.dim, train.num_classes, rng=2)
        runs[name] = Trainer(model, train, test, policy,
                             TrainerConfig(epochs=10, batch_size=64)).run()

    sim = MultiGPUSimulator(comm_ms_per_step=8.0, steps_per_epoch=20)
    base = sim.per_epoch_times(runs["baseline"], GPUS)
    spider = sim.per_epoch_times(runs["spidercache"], GPUS)

    print(f"{'GPUs':>4} {'baseline':>9} {'spidercache':>12} {'gain':>6}")
    for k in GPUS:
        print(f"{k:>4} {base[k]:>8.2f}s {spider[k]:>11.2f}s "
              f"{base[k] / spider[k]:>5.2f}x")

    print("\nper-epoch decomposition at 4 GPUs (spidercache):")
    ep = runs["spidercache"].epochs[-1]
    d = sim.scale_epoch(ep.data_load_s, ep.compute_s, 4)
    print(f"  load {d.data_load_s:.3f}s + compute {d.compute_s:.3f}s "
          f"+ comm {d.comm_s:.3f}s = {d.epoch_time_s:.3f}s")


if __name__ == "__main__":
    main()
