#!/usr/bin/env python
"""Quickstart: train one model under SpiderCache and read the results.

Builds a CIFAR-10-like synthetic dataset, a small ResNet18-profile model,
and the full SpiderCache policy (graph-based IS + semantic two-layer cache
+ elastic manager), then trains for 10 epochs over a simulated remote
store, printing per-epoch accuracy, cache hit ratio, and the elastic
imp-ratio.

Run:  python examples/quickstart.py
"""

from repro import SpiderCachePolicy, Trainer, TrainerConfig
from repro.data import make_dataset, train_test_split
from repro.nn import build_model


def main() -> None:
    # 1. Data: synthetic clustered features standing in for CIFAR-10
    #    (see DESIGN.md for why this preserves the caching behaviour).
    data = make_dataset("cifar10-like", rng=0, n_samples=2000)
    train, test = train_test_split(data, test_fraction=0.25, rng=1)
    print(f"dataset: {len(train)} train / {len(test)} test, "
          f"{train.num_classes} classes, kinds = {train.kind_fractions()}")

    # 2. Model: the 'resnet18' zoo entry (embedding taps + Table-1 costs).
    model = build_model("resnet18", train.dim, train.num_classes, rng=2)
    print(f"model: resnet18 profile, {model.num_parameters():,} parameters, "
          f"embedding dim {model.embedding_dim}")

    # 3. Policy: full SpiderCache with a 20% cache budget.
    policy = SpiderCachePolicy(cache_fraction=0.2, rng=3)

    # 4. Train. The trainer simulates remote-storage latency; the model
    #    math (forward/backward) is real.
    result = Trainer(model, train, test, policy,
                     TrainerConfig(epochs=10, batch_size=64)).run()

    print(f"\n{'epoch':>5} {'val acc':>8} {'hit':>6} {'subst':>6} "
          f"{'imp-ratio':>9} {'epoch time':>10}")
    for e in result.epochs:
        print(f"{e.epoch:>5} {e.val_accuracy:>8.3f} {e.hit_ratio:>6.3f} "
              f"{e.substitute_ratio:>6.3f} {e.imp_ratio:>9.2f} "
              f"{e.epoch_time_s:>9.2f}s")

    s = result.summary()
    print(f"\nfinal accuracy {s['final_accuracy']:.3f}, "
          f"mean hit ratio {s['mean_hit_ratio']:.3f}, "
          f"total simulated time {s['total_time_s']:.1f}s "
          f"(load {s['data_load_s']:.1f}s / compute {s['compute_s']:.1f}s)")


if __name__ == "__main__":
    main()
