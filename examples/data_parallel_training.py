#!/usr/bin/env python
"""Data-parallel training: sharded vs shared caches across workers.

Runs real synchronous data parallelism (replicas + gradient averaging) in
both cache deployments:

* **sharded** — each worker owns a fixed data partition with its own cache
  (the DistributedSampler convention);
* **shared** — all workers fetch through one global SpiderCache (the
  paper's multi-GPU setup: one Redis shared by every GPU), with each
  epoch's importance order split round-robin.

Also checkpoints mid-run and resumes, exercising the spot-VM recovery path.

Run:  python examples/data_parallel_training.py
"""

from pathlib import Path
import tempfile

from repro import SpiderCachePolicy, TrainerConfig
from repro.data import make_dataset, train_test_split
from repro.nn import build_model
from repro.train import DataParallelTrainer
from repro.train.checkpoint import load_checkpoint, restore_into, save_checkpoint

WORLD_SIZE = 4
EPOCHS = 6


def main() -> None:
    data = make_dataset("cifar10-like", rng=0, n_samples=1600)
    train, test = train_test_split(data, test_fraction=0.25, rng=1)

    print(f"{'deployment':<10} {'final acc':>9} {'hit ratio':>9} "
          f"{'epoch time':>10} {'in sync':>8}")
    for shared in [False, True]:
        dp = DataParallelTrainer(
            model_factory=lambda: build_model("resnet18", train.dim,
                                              train.num_classes, rng=7),
            train_set=train,
            test_set=test,
            policy_factory=lambda rank: SpiderCachePolicy(
                cache_fraction=0.2, rng=100 + rank),
            world_size=WORLD_SIZE,
            shared_cache=shared,
            config=TrainerConfig(epochs=EPOCHS, batch_size=64),
            rng=5,
        )
        res = dp.run()
        name = "shared" if shared else "sharded"
        print(f"{name:<10} {res.final_accuracy:>9.3f} "
              f"{res.epochs[-1].hit_ratio:>9.3f} "
              f"{res.epochs[-1].epoch_time_s:>9.2f}s "
              f"{str(dp.replicas_in_sync(1e-8)):>8}")

    # --- Checkpoint/resume (spot-VM termination recovery) ----------------
    print("\ncheckpoint/resume demo:")
    dp = DataParallelTrainer(
        model_factory=lambda: build_model("resnet18", train.dim,
                                          train.num_classes, rng=7),
        train_set=train, test_set=test,
        policy_factory=lambda rank: SpiderCachePolicy(cache_fraction=0.2,
                                                      rng=100 + rank),
        world_size=2,
        config=TrainerConfig(epochs=3, batch_size=64),
        rng=5,
    )
    dp.run()
    w0 = dp.workers[0]
    with tempfile.TemporaryDirectory() as tmp:
        path = save_checkpoint(Path(tmp) / "dp.npz", w0.model, w0.optimizer,
                               epoch=3, metadata={"world_size": 2})
        ck = load_checkpoint(path)
        fresh = build_model("resnet18", train.dim, train.num_classes, rng=99)
        restore_into(ck, fresh)
        acc_saved, _ = w0.model.evaluate(test.X, test.y)
        acc_restored, _ = fresh.evaluate(test.X, test.y)
        print(f"  saved-model accuracy    {acc_saved:.3f}")
        print(f"  restored-model accuracy {acc_restored:.3f} (identical weights)")


if __name__ == "__main__":
    main()
