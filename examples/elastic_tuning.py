#!/usr/bin/env python
"""Elastic cache tuning: trade accuracy against speed with the imp-ratio.

The Elastic Cache Manager (§4.3) anneals the Importance/Homophily split
from ``r_start`` to ``r_end``; a lower ``r_end`` harvests more substitute
hits (faster training) at a small accuracy cost. This example sweeps three
strategies — the paper's Table-6 experiment — and prints the trade-off so
users can pick a point matching their training goals.

Run:  python examples/elastic_tuning.py
"""

import numpy as np

from repro import SpiderCachePolicy, Trainer, TrainerConfig
from repro.data import make_dataset, train_test_split
from repro.nn import build_model

STRATEGIES = [
    ("accuracy-first (static 90%)", dict(r_start=0.9, r_end=0.9, elastic=False)),
    ("balanced (90% -> 80%)", dict(r_start=0.9, r_end=0.8)),
    ("speed-first (90% -> 50%)", dict(r_start=0.9, r_end=0.5)),
]


def main() -> None:
    data = make_dataset("cifar10-like", rng=0, n_samples=1600)
    train, test = train_test_split(data, test_fraction=0.25, rng=1)

    print(f"{'strategy':<28} {'accuracy':>9} {'time':>7} "
          f"{'late hit':>9} {'final imp-ratio':>15}")
    for name, kw in STRATEGIES:
        model = build_model("resnet18", train.dim, train.num_classes, rng=2)
        policy = SpiderCachePolicy(cache_fraction=0.2, rng=3, **kw)
        res = Trainer(model, train, test, policy,
                      TrainerConfig(epochs=14, batch_size=64)).run()
        late_hit = float(np.mean(res.series("hit_ratio")[-4:]))
        print(f"{name:<28} {res.final_accuracy:>9.3f} "
              f"{res.total_time_s:>6.1f}s {late_hit:>9.3f} "
              f"{res.epochs[-1].imp_ratio:>15.2f}")

    print("\nThe manager's per-epoch decisions (balanced strategy):")
    model = build_model("resnet18", train.dim, train.num_classes, rng=2)
    policy = SpiderCachePolicy(cache_fraction=0.2, r_start=0.9, r_end=0.8, rng=3)
    Trainer(model, train, test, policy,
            TrainerConfig(epochs=14, batch_size=64)).run()
    for d in policy.manager.history:
        print(f"  epoch {d.epoch:>2}: beta={d.beta} u={d.u:.2f} "
              f"imp_ratio={d.imp_ratio:.3f}")


if __name__ == "__main__":
    main()
